// Package prestige implements the paper's primary contribution: the three
// context-based prestige score functions of §3 — citation-based (per-context
// PageRank), text-based (weighted section/author/citation similarity to a
// representative paper), and pattern-based (scored textual patterns) — plus
// the hierarchical max-score propagation rule and the §7 future-work
// extension that weights cross-context citation relationships instead of
// omitting them.
//
// All scorers produce per-context scores max-normalised to [0,1] (so the
// separability analysis can bin them uniformly) and damped by the context's
// RateOfDecay when its paper set was inherited from an ancestor.
package prestige

import (
	"sort"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// Scores holds prestige scores per context per paper.
type Scores map[ontology.TermID]map[corpus.PaperID]float64

// Get returns the score of a paper in a context (0 when absent).
func (s Scores) Get(ctx ontology.TermID, p corpus.PaperID) float64 {
	return s[ctx][p]
}

// Contexts returns the scored contexts sorted by term ID.
func (s Scores) Contexts() []ontology.TermID {
	out := make([]ontology.TermID, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Values returns the score list of one context (unordered).
func (s Scores) Values(ctx ontology.TermID) []float64 {
	m := s[ctx]
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// TopK returns the IDs of the k highest-scored papers of a context. Papers
// tied with the k-th score are all included, per the paper's §2 definition
// of the top-k overlapping ratio denominator.
func (s Scores) TopK(ctx ontology.TermID, k int) []corpus.PaperID {
	m := s[ctx]
	if k <= 0 || len(m) == 0 {
		return nil
	}
	type ps struct {
		id corpus.PaperID
		v  float64
	}
	all := make([]ps, 0, len(m))
	for id, v := range m {
		all = append(all, ps{id, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	cutoff := all[k-1].v
	out := make([]corpus.PaperID, 0, k)
	for _, e := range all {
		if e.v < cutoff {
			break
		}
		out = append(out, e.id)
	}
	return out
}

// Scorer computes prestige scores for the papers of one context.
type Scorer interface {
	// Name identifies the score function ("citation", "text", "pattern").
	Name() string
	// ScoreContext returns prestige scores in [0,1] for the papers of ctx.
	// A nil map means the function is not applicable to this context (e.g.
	// the text-based function without a representative paper).
	ScoreContext(cs *contextset.ContextSet, ctx ontology.TermID) map[corpus.PaperID]float64
}

// ScoreAll runs a scorer over every context of the set with more than
// minSize papers, applying the context's RateOfDecay damping.
func ScoreAll(sc Scorer, cs *contextset.ContextSet, minSize int) Scores {
	out := make(Scores)
	for _, ctx := range cs.ContextsWithMinSize(minSize) {
		m := sc.ScoreContext(cs, ctx)
		if m == nil {
			continue
		}
		if d := cs.Decay(ctx); d != 1 {
			for id := range m {
				m[id] *= d
			}
		}
		out[ctx] = m
	}
	return out
}

// maxNormalizeMap scales a score map so its maximum is 1 (no-op when empty
// or all-zero).
func maxNormalizeMap(m map[corpus.PaperID]float64) {
	var max float64
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return
	}
	for id := range m {
		m[id] /= max
	}
}

// GraphFromCorpus builds the corpus-wide citation graph (node i = paper i).
func GraphFromCorpus(c *corpus.Corpus) *citegraph.Graph {
	g := citegraph.NewGraph(c.Len())
	for _, p := range c.Papers() {
		for _, r := range p.References {
			_ = g.AddEdge(int(p.ID), int(r))
		}
	}
	return g
}
