package prestige

import (
	"testing"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/pattern"
)

type corpusPaperID = corpus.PaperID

func benchFix(b *testing.B) *fixture {
	b.Helper()
	if cachedFixture != nil {
		return cachedFixture
	}
	// Reuse the test fixture builder through a throwaway testing.T-like
	// path: construct directly.
	o, err := ontology.Generate(ontology.GenConfig{Seed: 5, NumTerms: 70, MaxDepth: 7, SecondParentProb: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(300))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := pattern.NewPosIndex(a)
	cfg := contextset.DefaultConfig()
	cachedFixture = &fixture{
		onto: o, c: c, a: a, ix: ix,
		text: contextset.BuildTextBased(a, o, cfg),
		pat:  contextset.BuildPatternBased(ix, a, o, cfg),
	}
	return cachedFixture
}

func largestContext(f *fixture) ontology.TermID {
	best := ontology.TermID("")
	bestN := 0
	for _, ctx := range f.pat.Contexts() {
		if n := f.pat.Size(ctx); n > bestN {
			bestN = n
			best = ctx
		}
	}
	return best
}

func BenchmarkCitationScoreContext(b *testing.B) {
	f := benchFix(b)
	s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	ctx := largestContext(f)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ScoreContext(f.pat, ctx)
	}
}

func BenchmarkTextScoreContext(b *testing.B) {
	f := benchFix(b)
	s := NewTextScorer(f.a, DefaultTextWeights())
	var ctx ontology.TermID
	for _, c := range f.text.Contexts() {
		if _, ok := f.text.Representative(c); ok && f.text.Size(c) > 20 {
			ctx = c
			break
		}
	}
	if ctx == "" {
		b.Skip("no suitable context")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ScoreContext(f.text, ctx)
	}
}

func BenchmarkPatternScoreContext(b *testing.B) {
	f := benchFix(b)
	s := NewPatternScorer(f.ix, f.onto, pattern.DefaultConfig(), pattern.DefaultMatchConfig())
	ctx := largestContext(f)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ScoreContext(f.pat, ctx)
	}
}

func BenchmarkScoreAllSerialVsParallel(b *testing.B) {
	f := benchFix(b)
	b.Run("serial", func(b *testing.B) {
		s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ScoreAll(s, f.pat, 10)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ScoreAllParallel(s, f.pat, 10, 0)
		}
	})
}

func BenchmarkPropagateMax(b *testing.B) {
	f := benchFix(b)
	s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	base := ScoreAll(s, f.pat, 10)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Copy then propagate (propagation mutates in place).
		cp := make(Scores, len(base))
		for ctx, m := range base {
			mm := make(map[corpusPaperID]float64, len(m))
			for id, v := range m {
				mm[id] = v
			}
			cp[ctx] = mm
		}
		_ = PropagateMax(f.onto, cp)
	}
}

// bigFix builds a context set with over a thousand scored contexts — the
// scale at which ScoreAllParallel's per-context allocations (subgraph maps,
// rank vectors) used to dominate; the pooled citegraph arenas are measured
// here for BENCH_PR3.json.
func bigFix(b *testing.B) (*corpus.Corpus, *contextset.ContextSet) {
	b.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 11, NumTerms: 2200, MaxDepth: 8, SecondParentProb: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(1600))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	if n := len(cs.Contexts()); n < 1000 {
		b.Fatalf("fixture too small: %d contexts, want >= 1000", n)
	}
	return c, cs
}

func BenchmarkScoreAllParallel1kContexts(b *testing.B) {
	c, cs := bigFix(b)
	s := NewCitationScorer(c, citegraph.PageRankOpts{})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ScoreAllParallel(s, cs, 0, 0)
	}
}

// BenchmarkPrestigeLookup pits the nested-map score lookup against the
// frozen CSR matrix's run-resolve + binary-search lookup, in the access
// pattern of the query merge: one context resolved per row, many papers
// probed within it.
func BenchmarkPrestigeLookup(b *testing.B) {
	f := benchFix(b)
	scores := ScoreAll(NewTextScorer(f.a, DefaultTextWeights()), f.text, 0)
	m := scores.Freeze()
	ctxs := scores.Contexts()
	papers := make([]corpusPaperID, f.c.Len())
	for i := range papers {
		papers[i] = corpusPaperID(i)
	}
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			ctx := ctxs[i%len(ctxs)]
			for _, p := range papers {
				sink += scores.Get(ctx, p)
			}
		}
		_ = sink
	})
	b.Run("matrix", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			run := m.Run(ctxs[i%len(ctxs)])
			for _, p := range papers {
				sink += run.Get(p)
			}
		}
		_ = sink
	})
}
