package prestige

import (
	"testing"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/pattern"
)

type corpusPaperID = corpus.PaperID

func benchFix(b *testing.B) *fixture {
	b.Helper()
	if cachedFixture != nil {
		return cachedFixture
	}
	// Reuse the test fixture builder through a throwaway testing.T-like
	// path: construct directly.
	o, err := ontology.Generate(ontology.GenConfig{Seed: 5, NumTerms: 70, MaxDepth: 7, SecondParentProb: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(300))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := pattern.NewPosIndex(a)
	cfg := contextset.DefaultConfig()
	cachedFixture = &fixture{
		onto: o, c: c, a: a, ix: ix,
		text: contextset.BuildTextBased(a, o, cfg),
		pat:  contextset.BuildPatternBased(ix, a, o, cfg),
	}
	return cachedFixture
}

func largestContext(f *fixture) ontology.TermID {
	best := ontology.TermID("")
	bestN := 0
	for _, ctx := range f.pat.Contexts() {
		if n := f.pat.Size(ctx); n > bestN {
			bestN = n
			best = ctx
		}
	}
	return best
}

func BenchmarkCitationScoreContext(b *testing.B) {
	f := benchFix(b)
	s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	ctx := largestContext(f)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ScoreContext(f.pat, ctx)
	}
}

func BenchmarkTextScoreContext(b *testing.B) {
	f := benchFix(b)
	s := NewTextScorer(f.a, DefaultTextWeights())
	var ctx ontology.TermID
	for _, c := range f.text.Contexts() {
		if _, ok := f.text.Representative(c); ok && f.text.Size(c) > 20 {
			ctx = c
			break
		}
	}
	if ctx == "" {
		b.Skip("no suitable context")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ScoreContext(f.text, ctx)
	}
}

func BenchmarkPatternScoreContext(b *testing.B) {
	f := benchFix(b)
	s := NewPatternScorer(f.ix, f.onto, pattern.DefaultConfig(), pattern.DefaultMatchConfig())
	ctx := largestContext(f)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ScoreContext(f.pat, ctx)
	}
}

func BenchmarkScoreAllSerialVsParallel(b *testing.B) {
	f := benchFix(b)
	b.Run("serial", func(b *testing.B) {
		s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ScoreAll(s, f.pat, 10)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ScoreAllParallel(s, f.pat, 10, 0)
		}
	})
}

func BenchmarkPropagateMax(b *testing.B) {
	f := benchFix(b)
	s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	base := ScoreAll(s, f.pat, 10)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Copy then propagate (propagation mutates in place).
		cp := make(Scores, len(base))
		for ctx, m := range base {
			mm := make(map[corpusPaperID]float64, len(m))
			for id, v := range m {
				mm[id] = v
			}
			cp[ctx] = mm
		}
		_ = PropagateMax(f.onto, cp)
	}
}
