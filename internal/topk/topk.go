// Package topk provides a bounded selection heap: a fixed-capacity
// container that retains the K best items of a stream under a total order,
// in O(log K) per offered item and O(K) space. Both rank-pruned query
// layers use it — the index's MaxScore evaluator keeps the K best hits,
// the search merge keeps the offset+limit best results — and its Min is
// the running threshold those layers prune against.
//
// The zero structural invariant callers rely on: after any sequence of
// Offer calls, the retained set is exactly the K best of everything
// offered, where "best" is the total order induced by the worse
// comparator. Ties must be broken by the comparator itself (e.g. by
// document ID), so the retained set is deterministic and independent of
// offer order.
package topk

// Heap retains the K best items offered to it. Construct with New.
//
// Internally it is a binary min-heap ordered by worse: the root is the
// worst retained item, so a full heap replaces its root whenever a better
// item arrives and rejects the rest in O(1).
type Heap[T any] struct {
	// worse reports whether a ranks strictly below b in the final order.
	worse func(a, b T) bool
	items []T
	k     int
}

// New returns a heap retaining the k best items under the given
// comparator. worse(a, b) must implement a strict total order ("a ranks
// strictly below b"); k must be positive.
func New[T any](k int, worse func(a, b T) bool) *Heap[T] {
	if k <= 0 {
		panic("topk: non-positive capacity")
	}
	return &Heap[T]{worse: worse, items: make([]T, 0, k), k: k}
}

// Len returns the number of retained items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Cap returns the retention capacity k.
func (h *Heap[T]) Cap() int { return h.k }

// Full reports whether the heap holds k items — only then is Min a
// meaningful pruning threshold.
func (h *Heap[T]) Full() bool { return len(h.items) == h.k }

// Min returns the worst retained item. It is only valid when Len() > 0.
func (h *Heap[T]) Min() T { return h.items[0] }

// Offer inserts x if it belongs in the K best seen so far, evicting the
// current worst when full. Returns whether x was retained.
func (h *Heap[T]) Offer(x T) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, x)
		h.up(len(h.items) - 1)
		return true
	}
	// Full: x must strictly beat the current worst to displace it.
	if !h.worse(h.items[0], x) {
		return false
	}
	h.items[0] = x
	h.down(0)
	return true
}

// Items returns the retained items in unspecified (heap) order. The slice
// aliases the heap's storage; callers typically sort it once at the end.
func (h *Heap[T]) Items() []T { return h.items }

// Reset empties the heap and sets a new retention capacity, reusing the
// backing storage when it is large enough. It lets pooled query scratch
// (the index's top-k evaluator) recycle one heap across queries with
// differing page sizes without reallocating. k must be positive.
func (h *Heap[T]) Reset(k int) {
	if k <= 0 {
		panic("topk: non-positive capacity")
	}
	if cap(h.items) < k {
		h.items = make([]T, 0, k)
	} else {
		h.items = h.items[:0]
	}
	h.k = k
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h.worse(h.items[l], h.items[worst]) {
			worst = l
		}
		if r < n && h.worse(h.items[r], h.items[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}
