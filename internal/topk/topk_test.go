package topk

import (
	"math/rand"
	"sort"
	"testing"
)

type item struct {
	score float64
	id    int
}

// worseItem orders by ascending score, ties by descending id — so the
// "best K" are the highest scores with the smallest ids on ties, matching
// the search layers' (score desc, id asc) result order.
func worseItem(a, b item) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.id > b.id
}

// bestK computes the expected retained set by full sort.
func bestK(items []item, k int) []item {
	sorted := append([]item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return worseItem(sorted[j], sorted[i]) })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func sortDesc(items []item) {
	sort.Slice(items, func(i, j int) bool { return worseItem(items[j], items[i]) })
}

func TestHeapAgainstFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		k := 1 + rng.Intn(12)
		items := make([]item, n)
		for i := range items {
			// Coarse scores force plenty of ties to exercise the id tiebreak.
			items[i] = item{score: float64(rng.Intn(8)) / 4, id: i}
		}
		h := New(k, worseItem)
		for _, it := range items {
			h.Offer(it)
		}
		got := append([]item(nil), h.Items()...)
		sortDesc(got)
		want := bestK(items, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d k=%d): retained %d items, want %d", trial, n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): item %d = %+v, want %+v", trial, n, k, i, got[i], want[i])
			}
		}
	}
}

func TestHeapOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := make([]item, 40)
	for i := range items {
		items[i] = item{score: float64(rng.Intn(5)), id: i}
	}
	want := bestK(items, 6)
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]item(nil), items...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		h := New(6, worseItem)
		for _, it := range shuffled {
			h.Offer(it)
		}
		got := append([]item(nil), h.Items()...)
		sortDesc(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("offer order changed the retained set: item %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

func TestHeapMinIsThreshold(t *testing.T) {
	h := New(3, worseItem)
	for i, s := range []float64{0.5, 0.9, 0.1, 0.7, 0.3} {
		h.Offer(item{score: s, id: i})
	}
	if !h.Full() {
		t.Fatal("heap should be full")
	}
	if min := h.Min(); min.score != 0.5 {
		t.Fatalf("Min score = %v, want 0.5 (third best of {0.9,0.7,0.5})", min.score)
	}
	// An item not beating Min must be rejected without changing the set.
	if h.Offer(item{score: 0.5, id: 99}) {
		t.Fatal("tie with Min (larger id) must be rejected")
	}
	if h.Offer(item{score: 0.4, id: -1}) {
		t.Fatal("item below Min must be rejected")
	}
	// A tie with Min but better id displaces it.
	if !h.Offer(item{score: 0.5, id: -1}) {
		t.Fatal("tie with Min (smaller id) must displace it")
	}
}

func TestHeapPartialFill(t *testing.T) {
	h := New(10, worseItem)
	h.Offer(item{score: 1, id: 0})
	h.Offer(item{score: 2, id: 1})
	if h.Full() {
		t.Fatal("heap with 2/10 items reports Full")
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
}

func TestHeapBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0, func(a, b int) bool { return a < b })
}
