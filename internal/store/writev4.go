package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

// sectionData is one section queued for writing.
type sectionData struct {
	id   uint32
	kind uint32
	data []byte
}

// SaveV4 writes the state to w in the flat v4 format (see format.go for
// the layout). The context set is flattened to its frozen CSR+bitmap
// arrays, each prestige matrix's CSR arrays are written verbatim, and —
// when the state carries them — the text index's postings and the DF
// table go along, so an open skips corpus re-analysis entirely. The
// layout is deterministic: sections in fixed ID order, dictionaries and
// directories sorted.
func SaveV4(w io.Writer, st *State) error { return saveFlat(w, st, versionV4) }

// SaveV5 writes the flat v5 format: v4 plus the index's block-max tables
// as their own sections, so an open binds the tables zero-copy instead of
// recomputing them over every posting. States whose index carries no block
// tables (or no index at all) produce a v5 file without the block
// sections — readers recompute on bind, exactly as for a v4 file.
func SaveV5(w io.Writer, st *State) error { return saveFlat(w, st, versionV5) }

// saveFlat is the shared flat-format writer; ver selects which optional
// sections are emitted and the header's version stamp.
func saveFlat(w io.Writer, st *State, ver int) error {
	if st == nil || st.ContextSet == nil {
		return fmt.Errorf("store: nil state or context set")
	}
	f := st.ContextSet.Freeze()
	mats := make(map[string]*prestige.Matrix, len(st.Matrices)+len(st.Scores))
	for name, m := range st.Matrices {
		mats[name] = m
	}
	for name, s := range st.Scores {
		if mats[name] == nil {
			mats[name] = s.Freeze()
		}
	}
	names := make([]string, 0, len(mats))
	for name := range mats {
		names = append(names, name)
	}
	sort.Strings(names)

	// Shared term dictionary: every ontology term referenced anywhere in
	// the state, sorted, referenced by index everywhere else.
	termSet := make(map[ontology.TermID]struct{})
	for _, t := range f.Ctxs {
		termSet[t] = struct{}{}
	}
	for t := range f.Reps {
		termSet[t] = struct{}{}
	}
	for t := range f.Decay {
		termSet[t] = struct{}{}
	}
	for t, a := range f.InheritedFrom {
		termSet[t] = struct{}{}
		termSet[a] = struct{}{}
	}
	for _, name := range names {
		ctxs, _, _, _, _ := mats[name].CSR()
		for _, t := range ctxs {
			termSet[t] = struct{}{}
		}
	}
	terms := make([]ontology.TermID, 0, len(termSet))
	for t := range termSet {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	ref := make(map[ontology.TermID]uint32, len(terms))
	for i, t := range terms {
		ref[t] = uint32(i)
	}

	var secs []sectionData
	add := func(id, kind uint32, data []byte) {
		secs = append(secs, sectionData{id: id, kind: kind, data: data})
	}

	var td builder
	td.u32(uint32(len(terms)))
	for _, t := range terms {
		td.str(string(t))
	}
	add(secTermDict, kindBytes, td.b)

	var mb builder
	mb.u32(uint32(f.Kind))
	mb.u32(uint32(len(f.Ctxs)))
	for _, t := range f.Ctxs {
		mb.u32(ref[t])
	}
	// Reps, decay, inheritedFrom: sorted by term for determinism.
	mb.u32(uint32(len(f.Reps)))
	for _, t := range sortedTermKeys(len(f.Reps), func(yield func(ontology.TermID)) {
		for k := range f.Reps {
			yield(k)
		}
	}) {
		mb.u32(ref[t])
		mb.u64(uint64(int64(f.Reps[t])))
	}
	mb.u32(uint32(len(f.Decay)))
	for _, t := range sortedTermKeys(len(f.Decay), func(yield func(ontology.TermID)) {
		for k := range f.Decay {
			yield(k)
		}
	}) {
		mb.u32(ref[t])
		mb.f64(f.Decay[t])
	}
	mb.u32(uint32(len(f.InheritedFrom)))
	for _, t := range sortedTermKeys(len(f.InheritedFrom), func(yield func(ontology.TermID)) {
		for k := range f.InheritedFrom {
			yield(k)
		}
	}) {
		mb.u32(ref[t])
		mb.u32(ref[f.InheritedFrom[t]])
	}
	add(secCSMeta, kindBytes, mb.b)

	add(secCSOffsets, kindI32, encodeI32s(f.Offsets))
	add(secCSDocs, kindI64, encodePaperIDs(f.Docs))
	add(secCSScores, kindF64, encodeF64s(f.Scores))
	add(secCSWordOffs, kindI32, encodeI32s(f.WordOffsets))
	add(secCSWords, kindU64, encodeU64s(f.Words))

	// Matrix directory and per-matrix sections.
	var dir builder
	dir.u32(uint32(len(names)))
	for i, name := range names {
		base := secMatrixBase + secMatrixStride*uint32(i)
		dir.str(name)
		dir.u32(base)
		ctxs, offsets, docs, vals, rowMax := mats[name].CSR()
		refs := make([]uint32, len(ctxs))
		for k, t := range ctxs {
			refs[k] = ref[t]
		}
		add(base+matCtxs, kindU32, encodeU32s(refs))
		add(base+matOffsets, kindI32, encodeI32s(offsets))
		add(base+matDocs, kindI32, encodeI32s(docs))
		add(base+matVals, kindF64, encodeF64s(vals))
		add(base+matRowMax, kindF64, encodeF64s(rowMax))
	}
	add(secMatrixDir, kindBytes, dir.b)

	// Text index + DF table (optional: only when the state carries them).
	if (st.Index == nil) != (st.DF == nil) {
		return fmt.Errorf("store: index parts and DF table must be saved together")
	}
	if st.Index != nil {
		p := st.Index
		var it builder
		it.u32(uint32(len(p.Terms)))
		for _, t := range p.Terms {
			it.str(t)
		}
		add(secIdxTerms, kindBytes, it.b)
		add(secIdxOffsets, kindI32, encodeI32s(p.Offsets))
		add(secIdxDocs, kindI64, encodePaperIDs(p.Docs))
		add(secIdxWeights, kindF64, encodeF64s(p.Weights))
		add(secIdxNorms, kindF64, encodeF64s(p.Norms))
		add(secIdxMaxWeight, kindF64, encodeF64s(p.MaxWeight))
		add(secIdxMaxRatio, kindF64, encodeF64s(p.MaxRatio))
		if ver >= versionV5 && p.BlockOffsets != nil && p.BlockSize > 0 {
			var bm builder
			bm.u32(uint32(p.BlockSize))
			add(secIdxBlockMeta, kindBytes, bm.b)
			add(secIdxBlockOffsets, kindI32, encodeI32s(p.BlockOffsets))
			add(secIdxBlockMaxW, kindF64, encodeF64s(p.BlockMaxWeight))
			add(secIdxBlockMaxR, kindF64, encodeF64s(p.BlockMaxRatio))
		}

		docs, counts := st.DF.Counts()
		dfTerms := make([]string, 0, len(counts))
		for t := range counts {
			dfTerms = append(dfTerms, t)
		}
		sort.Strings(dfTerms)
		var db builder
		db.u64(uint64(docs))
		db.u32(uint32(len(dfTerms)))
		for _, t := range dfTerms {
			db.str(t)
			db.u32(uint32(counts[t]))
		}
		add(secDF, kindBytes, db.b)
	}

	return writeSections(w, secs, ver)
}

// sortedTermKeys collects term IDs from an iterator and returns them
// sorted — the deterministic map-walk order of the metadata encoders.
func sortedTermKeys(n int, iter func(yield func(ontology.TermID))) []ontology.TermID {
	out := make([]ontology.TermID, 0, n)
	iter(func(t ontology.TermID) { out = append(out, t) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// alignUp rounds n up to the next multiple of align (a power of two).
func alignUp(n, align uint64) uint64 { return (n + align - 1) &^ (align - 1) }

// writeSections lays out the header (stamped with ver), section table, and
// aligned data and streams them to w.
func writeSections(w io.Writer, secs []sectionData, ver int) error {
	if len(secs) > maxSections {
		return fmt.Errorf("store: %d sections exceeds the format limit %d", len(secs), maxSections)
	}
	table := make([]byte, len(secs)*secHdrSize)
	off := alignUp(uint64(headerSize+len(table)), secAlign)
	for i := range secs {
		s := &secs[i]
		e := table[i*secHdrSize:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], s.kind)
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(s.data, castagnoli))
		binary.LittleEndian.PutUint32(e[28:], 0)
		off = alignUp(off+uint64(len(s.data)), secAlign)
	}

	var hdr [headerSize]byte
	copy(hdr[:8], magicV4)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(ver))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(secs)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(hdr[20:], 0)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: writing v4 header: %w", err)
	}
	if _, err := w.Write(table); err != nil {
		return fmt.Errorf("store: writing v4 section table: %w", err)
	}
	pos := uint64(headerSize + len(table))
	var pad [secAlign]byte
	for i := range secs {
		s := &secs[i]
		if p := alignUp(pos, secAlign) - pos; p > 0 {
			if _, err := w.Write(pad[:p]); err != nil {
				return fmt.Errorf("store: writing v4 padding: %w", err)
			}
			pos += p
		}
		if _, err := w.Write(s.data); err != nil {
			return fmt.Errorf("store: writing v4 section %d: %w", s.id, err)
		}
		pos += uint64(len(s.data))
	}
	return nil
}
