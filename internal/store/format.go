package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
	"unsafe"

	"ctxsearch/internal/corpus"
)

// The flat state format (versions 4 and 5) is a sectioned binary file
// built for memory-mapped, zero-copy opens. The magic marks the flat
// container; the version field inside the header distinguishes revisions —
// v5 adds the index's block-max sections (17–20) and changes nothing else,
// so one reader serves both:
//
//	header (24 bytes):
//	  [8]byte  magic "CTXSRCH4"
//	  uint32   version (4 or 5)
//	  uint32   section count
//	  uint32   CRC32-C of the section table bytes
//	  uint32   reserved (0)
//	section table (count × 32 bytes, immediately after the header):
//	  uint32   section id
//	  uint32   element kind (bytes / int32 / int64 / float64 / uint64 / uint32)
//	  uint64   data offset from file start
//	  uint64   data length in bytes
//	  uint32   CRC32-C of the data
//	  uint32   reserved (0)
//	data sections, each aligned to 64 bytes (zero padding between)
//
// All integers and floats are little-endian, fixed width. Numeric sections
// are reinterpreted in place via unsafe.Slice — no per-element decode —
// which is valid because (a) the section offset is a multiple of the
// element size (64-byte alignment implies every element alignment), (b)
// the slices are only ever read (every construct-from-borrowed-slices
// consumer documents the no-mutate contract), and (c) the host is
// little-endian (checked at open; big-endian hosts take a per-element
// decode fallback). Section CRCs are verified lazily: the first time a
// section's data is materialized into a component, not at open — an open
// therefore touches only the header, the table, and the small dictionary
// sections, never faulting in the CSR payload pages.
const (
	magicV4     = "CTXSRCH4"
	versionV4   = 4
	versionV5   = 5
	headerSize  = 24
	secHdrSize  = 32
	secAlign    = 64
	maxSections = 1 << 16
)

// Section element kinds. The kind fixes the element size, and with it the
// alignment the section offset must satisfy.
const (
	kindBytes = uint32(iota)
	kindI32
	kindI64
	kindF64
	kindU64
	kindU32
)

// elemSize returns the element width of a section kind (1 for raw bytes).
func elemSize(kind uint32) int {
	switch kind {
	case kindI32, kindU32:
		return 4
	case kindI64, kindF64, kindU64:
		return 8
	default:
		return 1
	}
}

// Section IDs. The context-set and index sections have fixed IDs; each
// prestige matrix gets a block of IDs starting at a base recorded in the
// matrix directory.
const (
	secCSMeta       = uint32(1)  // bytes: kind, member ctx refs, reps, decay, inheritedFrom
	secTermDict     = uint32(2)  // bytes: shared term-ID string table
	secCSOffsets    = uint32(3)  // int32: member run offsets
	secCSDocs       = uint32(4)  // int64: member paper IDs
	secCSScores     = uint32(5)  // float64: assignment scores
	secCSWordOffs   = uint32(6)  // int32: bitmap word-run offsets
	secCSWords      = uint32(7)  // uint64: bitmap words
	secIdxTerms     = uint32(8)  // bytes: index term dictionary
	secIdxOffsets   = uint32(9)  // int32: posting run offsets
	secIdxDocs      = uint32(10) // int64: posting doc IDs
	secIdxWeights   = uint32(11) // float64: posting weights
	secIdxNorms     = uint32(12) // float64: per-document vector norms
	secIdxMaxWeight = uint32(13) // float64: per-term max posting weight
	secIdxMaxRatio  = uint32(14) // float64: per-term max weight/norm ratio
	secDF           = uint32(15) // bytes: document-frequency table
	secMatrixDir    = uint32(16) // bytes: score-function name → section base
	// Block-max index sections, written by v5 and optional on read: a
	// reader binding a state without them recomputes the tables on open
	// (see index.FromParts).
	secIdxBlockMeta    = uint32(17) // bytes: u32 postings-per-block granularity
	secIdxBlockOffsets = uint32(18) // int32: per-term block-run offsets
	secIdxBlockMaxW    = uint32(19) // float64: per-block max posting weight
	secIdxBlockMaxR    = uint32(20) // float64: per-block max weight/norm ratio
	secMatrixBase      = uint32(100)
	secMatrixStride    = uint32(16)
)

// Per-matrix section offsets from its base.
const (
	matCtxs    = uint32(0) // uint32: refs into the shared term dictionary
	matOffsets = uint32(1) // int32: row offsets
	matDocs    = uint32(2) // int32: paper IDs
	matVals    = uint32(3) // float64: scores
	matRowMax  = uint32(4) // float64: per-row maxima
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the host stores integers little-endian;
// the zero-copy reinterpretation is only valid when it does.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// alignedBytes returns an n-byte slice whose base address is 8-aligned
// (backed by a []uint64), so the byte-copy fallback path can reinterpret
// numeric sections exactly like the mmap path.
func alignedBytes(n int) []byte {
	if n <= 0 {
		return nil
	}
	w := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), n)
}

// --- zero-copy reinterpretation (little-endian hosts) with per-element
// --- decode fallbacks (big-endian hosts). Lengths must be validated by
// --- the caller (section parsing checks length % elemSize == 0).

func asI32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func asU32s(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func asU64s(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func asF64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// asPaperIDs reinterprets an int64 section as paper IDs. corpus.PaperID is
// int, so the zero-copy cast is only layout-valid on 64-bit hosts; 32-bit
// (or big-endian) hosts pay a per-element copy.
func asPaperIDs(b []byte) []corpus.PaperID {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && strconv.IntSize == 64 {
		return unsafe.Slice((*corpus.PaperID)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]corpus.PaperID, len(b)/8)
	for i := range out {
		out[i] = corpus.PaperID(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// asString reinterprets a byte run as a string without copying. The bytes
// alias the mapped (or heap) file buffer, which outlives every component
// handed out by the Mapped — the same lifetime argument as the numeric
// slices.
func asString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// --- little-endian encoders for the writer (portable, per-element; the
// --- write path is offline and never hot).

func encodeI32s(v []int32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	return b
}

func encodeU32s(v []uint32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], x)
	}
	return b
}

func encodeU64s(v []uint64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], x)
	}
	return b
}

func encodeF64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func encodePaperIDs(v []corpus.PaperID) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(int64(x)))
	}
	return b
}

// cursor is a little-endian byte-stream reader for the small metadata
// sections (dictionaries, directory, context-set meta). Errors latch: once
// a read overruns, every subsequent read returns zero values and err()
// reports the overrun.
type cursor struct {
	b    []byte
	off  int
	fail bool
}

func (c *cursor) take(n int) []byte {
	if c.fail || n < 0 || c.off+n > len(c.b) {
		c.fail = true
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// str reads a u32-length-prefixed string, aliasing the underlying buffer
// (no copy).
func (c *cursor) str() string { return asString(c.take(int(c.u32()))) }

// done reports a clean, fully-consumed parse.
func (c *cursor) done() error {
	if c.fail {
		return fmt.Errorf("truncated metadata section")
	}
	if c.off != len(c.b) {
		return fmt.Errorf("metadata section has %d trailing bytes", len(c.b)-c.off)
	}
	return nil
}

// builder accumulates a metadata section.
type builder struct{ b []byte }

func (w *builder) u32(x uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], x)
	w.b = append(w.b, t[:]...)
}

func (w *builder) u64(x uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], x)
	w.b = append(w.b, t[:]...)
}

func (w *builder) f64(x float64) { w.u64(math.Float64bits(x)) }

func (w *builder) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
