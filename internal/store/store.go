// Package store persists the query-independent pre-processing artefacts of
// the context-based search system — context paper sets and prestige scores
// — so a deployment can run tasks 1–2 offline once and serve queries from
// the saved state. The corpus and ontology persist through their own
// packages (corpus gob store, ontology OBO writer); this package covers the
// derived state.
package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

// version guards the on-disk format.
const version = 1

// State bundles one context paper set with the prestige scores of any
// number of score functions computed over it.
type State struct {
	ContextSet *contextset.ContextSet
	// Scores maps score-function name ("text", "citation", "pattern", …)
	// to its Scores.
	Scores map[string]prestige.Scores
}

type header struct {
	Magic   string
	Version int
}

type payload struct {
	Snapshot *contextset.Snapshot
	Scores   map[string]prestige.Scores
}

// Save writes the state to w.
func Save(w io.Writer, st *State) error {
	if st == nil || st.ContextSet == nil {
		return fmt.Errorf("store: nil state or context set")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: "ctxsearch-state", Version: version}); err != nil {
		return fmt.Errorf("store: encoding header: %w", err)
	}
	if err := enc.Encode(payload{Snapshot: st.ContextSet.Snapshot(), Scores: st.Scores}); err != nil {
		return fmt.Errorf("store: encoding payload: %w", err)
	}
	return nil
}

// Load reads a state previously written by Save, rebinding the context set
// to the given ontology (which must be the one the state was built from).
func Load(r io.Reader, onto *ontology.Ontology) (*State, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("store: decoding header: %w", err)
	}
	if h.Magic != "ctxsearch-state" {
		return nil, fmt.Errorf("store: bad magic %q", h.Magic)
	}
	if h.Version != version {
		return nil, fmt.Errorf("store: unsupported version %d (want %d)", h.Version, version)
	}
	var p payload
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("store: decoding payload: %w", err)
	}
	cs, err := contextset.FromSnapshot(onto, p.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &State{ContextSet: cs, Scores: p.Scores}, nil
}

// SaveFile writes the state to path.
func SaveFile(path string, st *State) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, st); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a state from path.
func LoadFile(path string, onto *ontology.Ontology) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, onto)
}
