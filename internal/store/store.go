// Package store persists the query-independent pre-processing artefacts of
// the context-based search system — context paper sets and prestige scores
// — so a deployment can run tasks 1–2 offline once and serve queries from
// the saved state. The corpus and ontology persist through their own
// packages (corpus gob store, ontology OBO writer); this package covers the
// derived state.
package store

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

// version guards the on-disk format.
const version = 1

// State bundles one context paper set with the prestige scores of any
// number of score functions computed over it.
type State struct {
	ContextSet *contextset.ContextSet
	// Scores maps score-function name ("text", "citation", "pattern", …)
	// to its Scores.
	Scores map[string]prestige.Scores
}

type header struct {
	Magic   string
	Version int
}

type payload struct {
	Snapshot *contextset.Snapshot
	Scores   map[string]prestige.Scores
}

// Save writes the state to w.
func Save(w io.Writer, st *State) error {
	if st == nil || st.ContextSet == nil {
		return fmt.Errorf("store: nil state or context set")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: "ctxsearch-state", Version: version}); err != nil {
		return fmt.Errorf("store: encoding header: %w", err)
	}
	if err := enc.Encode(payload{Snapshot: st.ContextSet.Snapshot(), Scores: st.Scores}); err != nil {
		return fmt.Errorf("store: encoding payload: %w", err)
	}
	return nil
}

// corruptionHint classifies a gob decode failure so diagnostics say whether
// the file ends early (crash mid-write, partial copy) or is garbled.
func corruptionHint(err error) string {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "truncated file"
	}
	return "corrupt gob stream"
}

// Load reads a state previously written by Save, rebinding the context set
// to the given ontology (which must be the one the state was built from).
// Decode failures are wrapped with what was found — the magic and version
// when the header survived, or a truncation/corruption classification — so
// a corrupted -state file produces an actionable message.
func Load(r io.Reader, onto *ontology.Ontology) (*State, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("store: decoding header (%s, not a ctxsearch state?): %w", corruptionHint(err), err)
	}
	if h.Magic != "ctxsearch-state" {
		return nil, fmt.Errorf("store: bad magic %q (want %q)", h.Magic, "ctxsearch-state")
	}
	if h.Version != version {
		return nil, fmt.Errorf("store: unsupported version %d (want %d)", h.Version, version)
	}
	var p payload
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("store: decoding payload after header (magic %q, version %d): %s: %w",
			h.Magic, h.Version, corruptionHint(err), err)
	}
	cs, err := contextset.FromSnapshot(onto, p.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &State{ContextSet: cs, Scores: p.Scores}, nil
}

// SaveFile writes the state to path crash-safely: the gob stream goes to a
// temp file in the same directory, is synced, and is renamed into place, so
// a crash mid-save leaves either the old state or none — never a truncated
// file that Load rejects on the next boot.
func SaveFile(path string, st *State) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()           // no-op if already closed
			os.Remove(tmp.Name()) // no-op if already renamed
		}
	}()
	if err = Save(tmp, st); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: installing %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a state from path.
func LoadFile(path string, onto *ontology.Ontology) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, onto)
}
