// Package store persists the query-independent pre-processing artefacts of
// the context-based search system — context paper sets and prestige scores
// — so a deployment can run tasks 1–2 offline once and serve queries from
// the saved state. The corpus and ontology persist through their own
// packages (corpus gob store, ontology OBO writer); this package covers the
// derived state.
package store

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/vector"
)

// version is the current gob on-disk format. v1 persisted prestige scores
// as nested maps (term → paper → score); v2 persists the frozen CSR
// matrices (flat arrays — smaller on disk and far cheaper to decode); v3
// keeps the v2 payload shape but the matrices additionally carry their
// per-context row maxima (the top-k pruning bounds), so a cold start
// serves pruned queries without a recomputation pass. v4 and v5 are not
// gob at all: flat sectioned binaries built for memory-mapped zero-copy
// opens (see format.go; v5 adds the index's block-max sections), written
// by SaveV4/SaveV5 and opened by Open. Save always writes v3 gob; Load
// accepts v1–v5, freezing v1 maps and recomputing v2 row maxima on the
// way in.
const (
	version   = 3
	versionV2 = 2
	versionV1 = 1
)

// maxStateBytes caps how many bytes Load will consume from a reader
// (2 GiB). Gob trusts stream-declared lengths, so a garbled length in a
// corrupt stream could otherwise drive allocation (or an endless read)
// far past any real state; the cap converts that into the corruption
// diagnostic. A var so tests can tighten it.
var maxStateBytes = int64(2) << 30

// errSizeCap marks a read that ran past maxStateBytes.
var errSizeCap = errors.New("store: stream exceeds the state size sanity cap (garbled length in a corrupt file?)")

// cappedReader returns errSizeCap once n bytes have been read.
type cappedReader struct {
	r       io.Reader
	n       int64
	tripped bool
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.n <= 0 {
		c.tripped = true
		return 0, errSizeCap
	}
	if int64(len(p)) > c.n {
		p = p[:c.n]
	}
	n, err := c.r.Read(p)
	c.n -= int64(n)
	return n, err
}

// State bundles one context paper set with the prestige scores of any
// number of score functions computed over it.
type State struct {
	ContextSet *contextset.ContextSet
	// Matrices maps score-function name ("text", "citation", "pattern", …)
	// to its frozen CSR score matrix — the form the state file persists and
	// the cold-start path hands straight to search.NewEngineFrozen.
	Matrices map[string]*prestige.Matrix
	// Scores is the map (builder) form. Save freezes any entry without a
	// matching matrix; Load leaves it nil for v2 files (populated only when
	// loading a legacy v1 file, whose maps are also frozen into Matrices).
	Scores map[string]prestige.Scores
	// Index and DF are the text-index postings and document-frequency
	// table. Persisted (together) only by the v4 format, so an open can
	// skip corpus re-analysis; nil in gob states and in v4 states saved
	// without them. The v3 writer ignores them.
	Index *index.Parts
	DF    *vector.DF
}

// Matrix returns the frozen matrix of a score function, freezing the map
// form on demand when only it is present.
func (st *State) Matrix(name string) *prestige.Matrix {
	if m := st.Matrices[name]; m != nil {
		return m
	}
	if s, ok := st.Scores[name]; ok {
		return s.Freeze()
	}
	return nil
}

type header struct {
	Magic   string
	Version int
}

// payloadV1 is the legacy v1 payload shape (nested score maps). Gob matches
// struct fields by name, so this decodes streams written when the type was
// simply named "payload".
type payloadV1 struct {
	Snapshot *contextset.Snapshot
	Scores   map[string]prestige.Scores
}

// payloadV2 is the payload shape shared by v2 and v3: frozen CSR matrices
// only. The version in the header records whether the matrices' wire form
// carries row maxima (v3) or they must be recomputed on decode (v2) — the
// prestige package handles both transparently.
type payloadV2 struct {
	Snapshot *contextset.Snapshot
	Matrices map[string]*prestige.Matrix
}

// Save writes the state to w in the current (v3) format. Score functions
// present only in map form are frozen on the way out; the nested maps
// themselves are never persisted.
func Save(w io.Writer, st *State) error {
	if st == nil || st.ContextSet == nil {
		return fmt.Errorf("store: nil state or context set")
	}
	mats := make(map[string]*prestige.Matrix, len(st.Matrices)+len(st.Scores))
	for name, m := range st.Matrices {
		mats[name] = m
	}
	for name, s := range st.Scores {
		if mats[name] == nil {
			mats[name] = s.Freeze()
		}
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: "ctxsearch-state", Version: version}); err != nil {
		return fmt.Errorf("store: encoding header: %w", err)
	}
	if err := enc.Encode(payloadV2{Snapshot: st.ContextSet.Snapshot(), Matrices: mats}); err != nil {
		return fmt.Errorf("store: encoding payload: %w", err)
	}
	return nil
}

// corruptionHint classifies a gob decode failure so diagnostics say whether
// the file ends early (crash mid-write, partial copy), blew the size
// sanity cap (garbled length), or is garbled some other way.
func corruptionHint(err error) string {
	if errors.Is(err, errSizeCap) {
		return "exceeds the size sanity cap (garbled length?)"
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "truncated file"
	}
	return "corrupt gob stream"
}

// Load reads a state previously written by Save, SaveV4, or SaveV5,
// rebinding the context set to the given ontology (which must be the one
// the state was built from). All versions v1–v5 are accepted; a flat
// stream is read whole and decoded through the same section machinery as
// Open (byte-copy
// semantics — use Open for the zero-copy mapped path). Decode failures
// are wrapped with what was found — the magic and version when the header
// survived, or a truncation/corruption classification — so a corrupted
// -state file produces an actionable message. Reads are capped at
// maxStateBytes: a garbled gob length fails with the corruption
// diagnostic instead of an OOM-scale allocation.
func Load(r io.Reader, onto *ontology.Ontology) (*State, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(len(magicV4)); err == nil && string(head) == magicV4 {
		capped := &cappedReader{r: br, n: maxStateBytes}
		raw, err := io.ReadAll(capped)
		if err != nil {
			return nil, fmt.Errorf("store: reading v4 stream: %s: %w", corruptionHint(err), err)
		}
		// Copy into an 8-aligned buffer so numeric sections reinterpret
		// exactly as on the mmap path.
		data := alignedBytes(len(raw))
		copy(data, raw)
		m, err := openBytes(data, false, onto)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		return m.State()
	}
	capped := &cappedReader{r: br, n: maxStateBytes}
	dec := gob.NewDecoder(capped)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("store: decoding header (%s, not a ctxsearch state?): %w", corruptionHint(err), err)
	}
	if h.Magic != "ctxsearch-state" {
		return nil, fmt.Errorf("store: bad magic %q (want %q)", h.Magic, "ctxsearch-state")
	}
	var snap *contextset.Snapshot
	st := &State{}
	switch h.Version {
	case versionV1:
		// Legacy nested-map payload: freeze each score map into its CSR
		// matrix so callers get the query-ready form regardless of the file
		// generation; the maps stay available in Scores.
		var p payloadV1
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("store: decoding payload after header (magic %q, version %d): %s: %w",
				h.Magic, h.Version, corruptionHint(err), err)
		}
		snap = p.Snapshot
		st.Scores = p.Scores
		st.Matrices = make(map[string]*prestige.Matrix, len(p.Scores))
		for name, s := range p.Scores {
			st.Matrices[name] = s.Freeze()
		}
	case versionV2, version:
		var p payloadV2
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("store: decoding payload after header (magic %q, version %d): %s: %w",
				h.Magic, h.Version, corruptionHint(err), err)
		}
		snap = p.Snapshot
		st.Matrices = p.Matrices
	case versionV4, versionV5:
		// Real v4/v5 files are flat binary (caught by the magic peek above),
		// never gob-framed.
		return nil, fmt.Errorf("store: gob stream claims version %d, but v%d states are flat binary — corrupt file?", h.Version, h.Version)
	default:
		return nil, tooNewError(h.Version)
	}
	cs, err := contextset.FromSnapshot(onto, snap)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st.ContextSet = cs
	return st, nil
}

// SaveFile writes the state to path crash-safely in the v3 gob format:
// the stream goes to a temp file in the same directory, is synced, and is
// renamed into place, so a crash mid-save leaves either the old state or
// none — never a truncated file that Load rejects on the next boot.
func SaveFile(path string, st *State) error {
	return saveFileWith(path, func(w io.Writer) error { return Save(w, st) })
}

// SaveFileV4 is SaveFile in the flat v4 format (same crash-safe install).
func SaveFileV4(path string, st *State) error {
	return saveFileWith(path, func(w io.Writer) error { return SaveV4(w, st) })
}

// SaveFileV5 is SaveFile in the flat v5 format (same crash-safe install).
func SaveFileV5(path string, st *State) error {
	return saveFileWith(path, func(w io.Writer) error { return SaveV5(w, st) })
}

func saveFileWith(path string, save func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()           // no-op if already closed
			os.Remove(tmp.Name()) // no-op if already renamed
		}
	}()
	if err = save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: installing %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a state from path.
func LoadFile(path string, onto *ontology.Ontology) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, onto)
}
