package store

import (
	"bytes"
	"testing"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

// benchState builds a state an order larger than the unit-test fixture so
// the decode cost is dominated by the score payload, the part the v2 format
// changes. BENCH_PR3.json records the v1-vs-v2 Load numbers.
func benchState(b *testing.B) (*ontology.Ontology, *State) {
	b.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 9, NumTerms: 200, MaxDepth: 7})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(800))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	scores := map[string]prestige.Scores{
		"text":     prestige.ScoreAll(prestige.NewTextScorer(a, prestige.DefaultTextWeights()), cs, 0),
		"citation": prestige.ScoreAll(prestige.NewCitationScorer(c, citegraph.PageRankOpts{}), cs, 0),
	}
	return o, &State{ContextSet: cs, Scores: scores}
}

func BenchmarkLoad(b *testing.B) {
	o, st := benchState(b)
	var v1, v2 bytes.Buffer
	if err := saveV1(&v1, st); err != nil {
		b.Fatal(err)
	}
	if err := Save(&v2, st); err != nil {
		b.Fatal(err)
	}
	b.Run("v1-maps", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v1.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(v1.Bytes()), o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-matrix", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v2.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(v2.Bytes()), o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSave(b *testing.B) {
	_, st := benchState(b)
	// Pre-freeze so the benchmark measures encoding, not Freeze.
	st.Matrices = make(map[string]*prestige.Matrix, len(st.Scores))
	for name, s := range st.Scores {
		st.Matrices[name] = s.Freeze()
	}
	var buf bytes.Buffer
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Save(&buf, st); err != nil {
			b.Fatal(err)
		}
	}
}
