package store

import (
	"bytes"
	"path/filepath"
	"testing"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

// benchState builds a state an order larger than the unit-test fixture so
// the decode cost is dominated by the score payload, the part the v2 format
// changes. BENCH_PR3.json records the v1-vs-v2 Load numbers.
func benchState(b *testing.B) (*ontology.Ontology, *State) {
	b.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 9, NumTerms: 200, MaxDepth: 7})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(800))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	scores := map[string]prestige.Scores{
		"text":     prestige.ScoreAll(prestige.NewTextScorer(a, prestige.DefaultTextWeights()), cs, 0),
		"citation": prestige.ScoreAll(prestige.NewCitationScorer(c, citegraph.PageRankOpts{}), cs, 0),
	}
	// Index parts and DF ride along for the v4 writers; the gob writers
	// ignore them, so the v1/v2/v3 benchmarks are unaffected.
	ix := index.Build(a)
	return o, &State{ContextSet: cs, Scores: scores, Index: ix.Parts(), DF: a.DF()}
}

func BenchmarkLoad(b *testing.B) {
	o, st := benchState(b)
	var v1, v2 bytes.Buffer
	if err := saveV1(&v1, st); err != nil {
		b.Fatal(err)
	}
	if err := Save(&v2, st); err != nil {
		b.Fatal(err)
	}
	b.Run("v1-maps", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v1.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(v1.Bytes()), o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-matrix", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v2.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(v2.Bytes()), o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOpen pins the tentpole claim of the v4 format: opening a state
// must not scale with the payload. v3-gob decodes every posting and score;
// v4-mmap maps the file and validates the header, section table and matrix
// directory only. "v4-mmap-bind" additionally materializes the context set,
// matrices, index parts and DF (first-touch CRC included) — the full
// engine-ready cost, still free of per-element decoding. BENCH_PR8.json
// records the numbers.
func BenchmarkOpen(b *testing.B) {
	o, st := benchState(b)
	// Freeze score maps so both writers persist the same matrices.
	st.Matrices = make(map[string]*prestige.Matrix, len(st.Scores))
	for name, s := range st.Scores {
		st.Matrices[name] = s.Freeze()
	}
	st.Scores = nil
	dir := b.TempDir()
	v3Path := filepath.Join(dir, "state.v3")
	v4Path := filepath.Join(dir, "state.v4")
	if err := SaveFile(v3Path, st); err != nil {
		b.Fatal(err)
	}
	if err := SaveFileV4(v4Path, st); err != nil {
		b.Fatal(err)
	}
	b.Run("v3-gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LoadFile(v3Path, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v4-mmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := Open(v4Path, o)
			if err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
	b.Run("v4-mmap-bind", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := Open(v4Path, o)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.ContextSet(); err != nil {
				b.Fatal(err)
			}
			for _, name := range m.MatrixNames() {
				if _, err := m.Matrix(name); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := m.IndexParts(); err != nil {
				b.Fatal(err)
			}
			if _, err := m.DF(); err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
}

func BenchmarkSave(b *testing.B) {
	_, st := benchState(b)
	// Pre-freeze so the benchmark measures encoding, not Freeze.
	st.Matrices = make(map[string]*prestige.Matrix, len(st.Scores))
	for name, s := range st.Scores {
		st.Matrices[name] = s.Freeze()
	}
	var buf bytes.Buffer
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Save(&buf, st); err != nil {
			b.Fatal(err)
		}
	}
}
