package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"ctxsearch/internal/index"
)

// v5Bytes renders the fixture state as a v5 image.
func v5Bytes(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveV5(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sectionIDs lists the section table's IDs in file order.
func sectionIDs(img []byte) []uint32 {
	count := int(binary.LittleEndian.Uint32(img[12:]))
	ids := make([]uint32, count)
	for i := 0; i < count; i++ {
		ids[i] = binary.LittleEndian.Uint32(img[headerSize+i*secHdrSize:])
	}
	return ids
}

// TestV5Deterministic: two v5 saves of the same state are byte-identical.
func TestV5Deterministic(t *testing.T) {
	_, _, _, st := fixtureWithIndex(t)
	if !bytes.Equal(v5Bytes(t, st), v5Bytes(t, st)) {
		t.Fatal("v5 encoding is not deterministic")
	}
}

// TestV5BlockSections pins the format split: a v5 image of a block-built
// index carries the four block sections and stamps version 5; the v4 image
// of the same state omits them and stamps version 4 — the v4 writer's
// output must not change just because the in-memory index now carries
// block tables.
func TestV5BlockSections(t *testing.T) {
	_, _, _, st := fixtureWithIndex(t)
	if st.Index.BlockOffsets == nil {
		t.Fatal("fixture index carries no block tables")
	}
	img5, img4 := v5Bytes(t, st), v4Bytes(t, st)
	if v := binary.LittleEndian.Uint32(img5[8:]); v != versionV5 {
		t.Fatalf("v5 image stamps version %d", v)
	}
	if v := binary.LittleEndian.Uint32(img4[8:]); v != versionV4 {
		t.Fatalf("v4 image stamps version %d", v)
	}
	ids5, ids4 := sectionIDs(img5), sectionIDs(img4)
	for _, id := range []uint32{secIdxBlockMeta, secIdxBlockOffsets, secIdxBlockMaxW, secIdxBlockMaxR} {
		if !slices.Contains(ids5, id) {
			t.Fatalf("v5 image lacks block section %d", id)
		}
		if slices.Contains(ids4, id) {
			t.Fatalf("v4 image contains block section %d", id)
		}
	}

	// A v5 save of parts without tables simply omits the sections (and
	// still opens — the reader recomputes on bind).
	stripped := *st
	idx := *st.Index
	idx.BlockSize, idx.BlockOffsets, idx.BlockMaxWeight, idx.BlockMaxRatio = 0, nil, nil, nil
	stripped.Index = &idx
	if ids := sectionIDs(v5Bytes(t, &stripped)); slices.Contains(ids, secIdxBlockMeta) {
		t.Fatal("v5 image of blockless parts contains block sections")
	}
}

// TestOpenV5 exercises the v5 mmap path: the bound parts carry the block
// tables zero-copy (identical to the saved ones), and they bind to a live
// index without the recompute pass.
func TestOpenV5(t *testing.T) {
	o, _, a, st := fixtureWithIndex(t)
	path := filepath.Join(t.TempDir(), "state.v5")
	if err := SaveFileV5(path, st); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	parts, err := m.IndexParts()
	if err != nil {
		t.Fatal(err)
	}
	if parts == nil || parts.BlockOffsets == nil {
		t.Fatal("v5 open returned parts without block tables")
	}
	if parts.BlockSize != st.Index.BlockSize {
		t.Fatalf("block size %d, want %d", parts.BlockSize, st.Index.BlockSize)
	}
	if !slices.Equal(parts.BlockOffsets, st.Index.BlockOffsets) ||
		!slices.Equal(parts.BlockMaxWeight, st.Index.BlockMaxWeight) ||
		!slices.Equal(parts.BlockMaxRatio, st.Index.BlockMaxRatio) {
		t.Fatal("mapped block tables differ from the saved ones")
	}
	ix, err := index.FromParts(a, parts)
	if err != nil {
		t.Fatalf("mapped v5 parts do not bind: %v", err)
	}
	if ix.BlockSize() != st.Index.BlockSize {
		t.Fatalf("bound index block size %d, want %d", ix.BlockSize(), st.Index.BlockSize)
	}
}

// TestLoadV5 covers the byte-copy read path (Load on a v5 stream) and the
// gob-framed-v5 corruption diagnostic.
func TestLoadV5(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	got, err := Load(bytes.NewReader(v5Bytes(t, st)), o)
	if err != nil {
		t.Fatal(err)
	}
	assertSameContextSet(t, st.ContextSet, got.ContextSet)
	assertSameMatrices(t, st, got.Matrices)
	if got.Index == nil || !slices.Equal(got.Index.BlockOffsets, st.Index.BlockOffsets) {
		t.Fatal("Load dropped the v5 block tables")
	}

	var buf bytes.Buffer
	if err := saveWithVersion(&buf, st, versionV5); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, o); err == nil || !strings.Contains(err.Error(), "flat binary") {
		t.Fatalf("gob-framed v5 not diagnosed as corruption: %v", err)
	}
}

// TestOpenV5BadBlockMeta: a block-size of zero in the meta section is
// rejected rather than tripping a divide-by-zero downstream.
func TestOpenV5BadBlockMeta(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v5Bytes(t, st)
	count := int(binary.LittleEndian.Uint32(img[12:]))
	for i := 0; i < count; i++ {
		e := img[headerSize+i*secHdrSize:]
		if binary.LittleEndian.Uint32(e[0:]) == secIdxBlockMeta {
			off := binary.LittleEndian.Uint64(e[8:])
			binary.LittleEndian.PutUint32(img[off:], 0)
			// Re-seal the payload so the size check, not the CRC, trips.
			length := binary.LittleEndian.Uint64(e[16:])
			binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(img[off:off+length], castagnoli))
			break
		}
	}
	patchTableCRC(img)
	data := alignedBytes(len(img))
	copy(data, img)
	m, err := openBytes(data, false, o)
	if err != nil {
		t.Fatalf("open reads no payload, must succeed: %v", err)
	}
	if _, err := m.IndexParts(); err == nil || !strings.Contains(err.Error(), "block size") {
		t.Fatalf("zero block size not rejected: %v", err)
	}
}

// TestV5BitFlips corrupts single bytes across the v5 image's meaningful
// regions — the header, every section-table entry, and the first, middle
// and last byte of every payload — and checks each flip is either rejected
// at open or caught when the state materializes. Bytes the reader never
// dereferences are deliberately excluded: inter-section padding and the
// reserved fields of the header and table entries, which no CRC covers.
func TestV5BitFlips(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v5Bytes(t, st)
	count := int(binary.LittleEndian.Uint32(img[12:]))
	var targets []int
	for off := 0; off < headerSize-4; off++ { // header minus its reserved tail
		targets = append(targets, off)
	}
	for i := 0; i < count; i++ {
		base := headerSize + i*secHdrSize
		for off := base; off < base+secHdrSize-4; off++ { // entry minus reserved
			targets = append(targets, off)
		}
	}
	for i := 0; i < count; i++ {
		e := img[headerSize+i*secHdrSize:]
		off := int(binary.LittleEndian.Uint64(e[8:]))
		length := int(binary.LittleEndian.Uint64(e[16:]))
		if length == 0 {
			continue
		}
		targets = append(targets, off, off+length/2, off+length-1)
	}
	for _, off := range targets {
		data := alignedBytes(len(img))
		copy(data, img)
		data[off] ^= 0xFF
		m, err := openBytes(data, false, o)
		if err != nil {
			continue // rejected at open: fine
		}
		if _, err := m.State(); err == nil {
			t.Fatalf("offset %d: corrupted v5 image materialized without error", off)
		}
	}
}
