package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/vector"
)

// noMmapEnv force-disables the mmap path (CI runs the suite with it set so
// the byte-copy fallback decoder stays green).
const noMmapEnv = "CTXSEARCH_NO_MMAP"

// section is one parsed section-table entry. verified flips after the
// first CRC check — each section's checksum is verified lazily, the first
// time its data is materialized into a component, so an open never faults
// in payload pages it doesn't need.
type section struct {
	id, kind    uint32
	off, length uint64
	crc         uint32
	verified    bool
}

// Mapped is an open state file. For a v4 file the components hand out
// slices aliasing the underlying mapping (or the heap buffer on the
// fallback path), materialized lazily and cached; for v1–v3 gob files it
// wraps a fully decoded State so callers get one open API across formats.
//
// Lifecycle: Open returns the Mapped holding one owner reference. Close
// drops it; the mapping is unmapped when the owner reference and every
// Retain have been released, so a server can swap in a new state and
// Close the old one while requests still read it (open-new, swap,
// close-old). Close is idempotent.
type Mapped struct {
	onto   *ontology.Ontology
	data   []byte
	mapped bool
	secs   map[uint32]*section

	refs   atomic.Int64
	closed atomic.Bool

	mu       sync.Mutex
	termDict []ontology.TermID
	cs       *contextset.ContextSet
	parts    *index.Parts
	hasParts bool
	df       *vector.DF
	matDir   map[string]uint32
	matNames []string
	mats     map[string]*prestige.Matrix
	st       *State
}

// Open opens a state file for serving. A flat (v4/v5) file is memory-mapped
// (syscall.Mmap on unix; a byte-copy read everywhere else or under
// CTXSEARCH_NO_MMAP=1) and its sections are reinterpreted zero-copy on
// demand; a v1–v3 gob file is decoded through Load. The ontology must be
// the one the state was built from.
func Open(path string, onto *ontology.Ontology) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var head [8]byte
	if n, _ := io.ReadFull(f, head[:]); n == len(head) && string(head[:]) == magicV4 {
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		size := int(fi.Size())
		var data []byte
		mapped := false
		if os.Getenv(noMmapEnv) == "" {
			if d, ok, merr := mmapFile(f, size); merr == nil && ok {
				data, mapped = d, true
			}
		}
		if data == nil {
			// Fallback: byte-copy the file into an 8-aligned heap buffer;
			// the section parsing and reinterpretation below are identical.
			data = alignedBytes(size)
			if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), data); err != nil {
				return nil, fmt.Errorf("store: reading %s: %w", path, err)
			}
		}
		m, err := openBytes(data, mapped, onto)
		if err != nil {
			if mapped {
				_ = munmap(data)
			}
			return nil, fmt.Errorf("store: opening %s: %w", path, err)
		}
		return m, nil
	}
	st, err := LoadFile(path, onto)
	if err != nil {
		return nil, err
	}
	m := &Mapped{onto: onto, st: st}
	m.refs.Store(1)
	return m, nil
}

// openBytes parses a flat (v4/v5) image over data (mapped or heap). Only the
// header, section table, and matrix directory are touched; everything
// else waits for its first consumer.
func openBytes(data []byte, mapped bool, onto *ontology.Ontology) (*Mapped, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("truncated v4 header (%d bytes)", len(data))
	}
	if string(data[:8]) != magicV4 {
		return nil, fmt.Errorf("bad v4 magic %q", data[:8])
	}
	ver := int(binary.LittleEndian.Uint32(data[8:]))
	if ver > versionV5 {
		return nil, tooNewError(ver)
	}
	if ver != versionV4 && ver != versionV5 {
		return nil, fmt.Errorf("flat state version %d is not supported (want %d or %d)", ver, versionV4, versionV5)
	}
	count := binary.LittleEndian.Uint32(data[12:])
	if count > maxSections {
		return nil, fmt.Errorf("section count %d exceeds the format limit %d (corrupt header?)", count, maxSections)
	}
	tend := headerSize + int(count)*secHdrSize
	if tend > len(data) {
		return nil, fmt.Errorf("truncated section table: %d sections need %d bytes, file has %d", count, tend, len(data))
	}
	table := data[headerSize:tend]
	if got, want := crc32.Checksum(table, castagnoli), binary.LittleEndian.Uint32(data[16:]); got != want {
		return nil, fmt.Errorf("section table CRC mismatch (corrupt state file)")
	}
	m := &Mapped{
		onto:   onto,
		data:   data,
		mapped: mapped,
		secs:   make(map[uint32]*section, count),
		mats:   make(map[string]*prestige.Matrix),
	}
	m.refs.Store(1)
	for i := 0; i < int(count); i++ {
		e := table[i*secHdrSize:]
		s := &section{
			id:     binary.LittleEndian.Uint32(e[0:]),
			kind:   binary.LittleEndian.Uint32(e[4:]),
			off:    binary.LittleEndian.Uint64(e[8:]),
			length: binary.LittleEndian.Uint64(e[16:]),
			crc:    binary.LittleEndian.Uint32(e[24:]),
		}
		if s.kind > kindU32 {
			return nil, fmt.Errorf("section %d has unknown element kind %d", s.id, s.kind)
		}
		es := uint64(elemSize(s.kind))
		if s.off%es != 0 {
			return nil, fmt.Errorf("section %d is unaligned: offset %d is not a multiple of its %d-byte elements", s.id, s.off, es)
		}
		if s.length%es != 0 {
			return nil, fmt.Errorf("section %d length %d is not a multiple of its %d-byte elements", s.id, s.length, es)
		}
		if s.off > uint64(len(data)) || s.off+s.length > uint64(len(data)) {
			return nil, fmt.Errorf("section %d spans [%d, %d) beyond the %d-byte file (truncated?)", s.id, s.off, s.off+s.length, len(data))
		}
		if m.secs[s.id] != nil {
			return nil, fmt.Errorf("duplicate section %d", s.id)
		}
		m.secs[s.id] = s
	}
	if err := m.parseMatrixDir(); err != nil {
		return nil, err
	}
	return m, nil
}

// tooNewError is the shared too-new-version diagnostic of the gob and flat
// readers: it names the file's version and points at the fix, so serve
// startup prints something actionable instead of a bare decode error.
func tooNewError(ver int) error {
	return fmt.Errorf("store: state file version %d is newer than this binary supports (≤ %d) — the file was built by a newer ctxsearch; upgrade this binary, or rebuild the state with this one", ver, versionV5)
}

// sectionLocked returns a section's data, verifying its CRC on first
// touch. Missing sections return (nil, false, nil). Caller holds m.mu (or
// is single-threaded during open).
func (m *Mapped) sectionLocked(id uint32) ([]byte, bool, error) {
	s := m.secs[id]
	if s == nil {
		return nil, false, nil
	}
	b := m.data[s.off : s.off+s.length]
	if !s.verified {
		if got := crc32.Checksum(b, castagnoli); got != s.crc {
			return nil, true, fmt.Errorf("store: section %d CRC mismatch (want %08x, data hashes to %08x): corrupt state file", id, s.crc, got)
		}
		s.verified = true
	}
	return b, true, nil
}

// needLocked is sectionLocked for sections the format requires.
func (m *Mapped) needLocked(id uint32) ([]byte, error) {
	b, ok, err := m.sectionLocked(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: state file is missing required section %d", id)
	}
	return b, nil
}

// termDictLocked decodes (once) the shared term-ID dictionary. Strings
// alias the file buffer — no copies.
func (m *Mapped) termDictLocked() ([]ontology.TermID, error) {
	if m.termDict != nil {
		return m.termDict, nil
	}
	b, err := m.needLocked(secTermDict)
	if err != nil {
		return nil, err
	}
	c := &cursor{b: b}
	n := int(c.u32())
	if n < 0 || n > len(b) {
		return nil, fmt.Errorf("store: term dictionary declares %d entries in a %d-byte section", n, len(b))
	}
	out := make([]ontology.TermID, n)
	for i := range out {
		out[i] = ontology.TermID(c.str())
	}
	if err := c.done(); err != nil {
		return nil, fmt.Errorf("store: term dictionary: %w", err)
	}
	m.termDict = out
	return out, nil
}

// dictRef resolves a term-dictionary reference with bounds checking.
func dictRef(dict []ontology.TermID, r uint32) (ontology.TermID, error) {
	if int(r) >= len(dict) {
		return "", fmt.Errorf("store: term reference %d outside the %d-entry dictionary", r, len(dict))
	}
	return dict[r], nil
}

// parseMatrixDir reads the score-function directory (eager: it is tiny
// and MatrixNames must work without faulting matrix payloads in).
func (m *Mapped) parseMatrixDir() error {
	b, err := m.needLocked(secMatrixDir)
	if err != nil {
		return err
	}
	c := &cursor{b: b}
	n := int(c.u32())
	if n < 0 || n > len(b) {
		return fmt.Errorf("store: matrix directory declares %d entries in a %d-byte section", n, len(b))
	}
	m.matDir = make(map[string]uint32, n)
	m.matNames = make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := c.str()
		base := c.u32()
		m.matDir[name] = base
		m.matNames = append(m.matNames, name)
	}
	if err := c.done(); err != nil {
		return fmt.Errorf("store: matrix directory: %w", err)
	}
	sort.Strings(m.matNames)
	return nil
}

// ContextSet materializes (once) the context paper set over the mapped
// member and bitmap arrays.
func (m *Mapped) ContextSet() (*contextset.ContextSet, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.contextSetLocked()
}

func (m *Mapped) contextSetLocked() (*contextset.ContextSet, error) {
	if m.st != nil {
		return m.st.ContextSet, nil
	}
	if m.cs != nil {
		return m.cs, nil
	}
	dict, err := m.termDictLocked()
	if err != nil {
		return nil, err
	}
	meta, err := m.needLocked(secCSMeta)
	if err != nil {
		return nil, err
	}
	c := &cursor{b: meta}
	kind := contextset.Kind(c.u32())
	nc := int(c.u32())
	if nc < 0 || nc > len(meta) {
		return nil, fmt.Errorf("store: context meta declares %d contexts in a %d-byte section", nc, len(meta))
	}
	ctxs := make([]ontology.TermID, nc)
	for i := range ctxs {
		if ctxs[i], err = dictRef(dict, c.u32()); err != nil {
			return nil, err
		}
	}
	nr := int(c.u32())
	reps := make(map[ontology.TermID]corpus.PaperID, nr)
	for i := 0; i < nr && !c.fail; i++ {
		t, err := dictRef(dict, c.u32())
		if err != nil {
			return nil, err
		}
		reps[t] = corpus.PaperID(int64(c.u64()))
	}
	nd := int(c.u32())
	decay := make(map[ontology.TermID]float64, nd)
	for i := 0; i < nd && !c.fail; i++ {
		t, err := dictRef(dict, c.u32())
		if err != nil {
			return nil, err
		}
		decay[t] = c.f64()
	}
	ni := int(c.u32())
	inherited := make(map[ontology.TermID]ontology.TermID, ni)
	for i := 0; i < ni && !c.fail; i++ {
		t, err := dictRef(dict, c.u32())
		if err != nil {
			return nil, err
		}
		if inherited[t], err = dictRef(dict, c.u32()); err != nil {
			return nil, err
		}
	}
	if err := c.done(); err != nil {
		return nil, fmt.Errorf("store: context meta: %w", err)
	}
	offs, err := m.needLocked(secCSOffsets)
	if err != nil {
		return nil, err
	}
	docs, err := m.needLocked(secCSDocs)
	if err != nil {
		return nil, err
	}
	scores, err := m.needLocked(secCSScores)
	if err != nil {
		return nil, err
	}
	woffs, err := m.needLocked(secCSWordOffs)
	if err != nil {
		return nil, err
	}
	words, err := m.needLocked(secCSWords)
	if err != nil {
		return nil, err
	}
	cs, err := contextset.FromFrozen(m.onto, &contextset.Frozen{
		Kind:          kind,
		Ctxs:          ctxs,
		Offsets:       asI32s(offs),
		Docs:          asPaperIDs(docs),
		Scores:        asF64s(scores),
		WordOffsets:   asI32s(woffs),
		Words:         asU64s(words),
		Reps:          reps,
		Decay:         decay,
		InheritedFrom: inherited,
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	m.cs = cs
	return cs, nil
}

// IndexParts materializes (once) the persisted text-index arrays, or
// (nil, nil) when the state was saved without them (v4 states written
// from a bare compute, or any gob state).
func (m *Mapped) IndexParts() (*index.Parts, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.indexPartsLocked()
}

func (m *Mapped) indexPartsLocked() (*index.Parts, error) {
	if m.st != nil {
		return m.st.Index, nil
	}
	if m.hasParts {
		return m.parts, nil
	}
	tb, ok, err := m.sectionLocked(secIdxTerms)
	if err != nil {
		return nil, err
	}
	if !ok {
		m.hasParts = true
		return nil, nil
	}
	c := &cursor{b: tb}
	n := int(c.u32())
	if n < 0 || n > len(tb) {
		return nil, fmt.Errorf("store: index term dictionary declares %d entries in a %d-byte section", n, len(tb))
	}
	terms := make([]string, n)
	for i := range terms {
		terms[i] = c.str()
	}
	if err := c.done(); err != nil {
		return nil, fmt.Errorf("store: index term dictionary: %w", err)
	}
	offs, err := m.needLocked(secIdxOffsets)
	if err != nil {
		return nil, err
	}
	docs, err := m.needLocked(secIdxDocs)
	if err != nil {
		return nil, err
	}
	weights, err := m.needLocked(secIdxWeights)
	if err != nil {
		return nil, err
	}
	norms, err := m.needLocked(secIdxNorms)
	if err != nil {
		return nil, err
	}
	maxW, err := m.needLocked(secIdxMaxWeight)
	if err != nil {
		return nil, err
	}
	maxR, err := m.needLocked(secIdxMaxRatio)
	if err != nil {
		return nil, err
	}
	parts := &index.Parts{
		Terms:     terms,
		Offsets:   asI32s(offs),
		Docs:      asPaperIDs(docs),
		Weights:   asF64s(weights),
		Norms:     asF64s(norms),
		MaxWeight: asF64s(maxW),
		MaxRatio:  asF64s(maxR),
	}
	// Block-max sections (v5; optional). A state without them — any v4
	// file, or a v5 file whose index carried no tables — leaves
	// BlockOffsets nil and index.FromParts recomputes the tables on bind.
	bmeta, ok, err := m.sectionLocked(secIdxBlockMeta)
	if err != nil {
		return nil, err
	}
	if ok {
		bc := &cursor{b: bmeta}
		bs := int(bc.u32())
		if err := bc.done(); err != nil {
			return nil, fmt.Errorf("store: index block meta: %w", err)
		}
		if bs <= 0 {
			return nil, fmt.Errorf("store: index block size %d is not positive", bs)
		}
		boffs, err := m.needLocked(secIdxBlockOffsets)
		if err != nil {
			return nil, err
		}
		bmw, err := m.needLocked(secIdxBlockMaxW)
		if err != nil {
			return nil, err
		}
		bmr, err := m.needLocked(secIdxBlockMaxR)
		if err != nil {
			return nil, err
		}
		parts.BlockSize = bs
		parts.BlockOffsets = asI32s(boffs)
		parts.BlockMaxWeight = asF64s(bmw)
		parts.BlockMaxRatio = asF64s(bmr)
	}
	m.parts = parts
	m.hasParts = true
	return m.parts, nil
}

// DF materializes (once) the persisted document-frequency table, or
// (nil, nil) when the state was saved without the index sections.
func (m *Mapped) DF() (*vector.DF, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dfLocked()
}

func (m *Mapped) dfLocked() (*vector.DF, error) {
	if m.st != nil {
		return m.st.DF, nil
	}
	if m.df != nil {
		return m.df, nil
	}
	b, ok, err := m.sectionLocked(secDF)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	c := &cursor{b: b}
	docs := int(int64(c.u64()))
	n := int(c.u32())
	if n < 0 || n > len(b) {
		return nil, fmt.Errorf("store: DF table declares %d entries in a %d-byte section", n, len(b))
	}
	counts := make(map[string]int, n)
	for i := 0; i < n && !c.fail; i++ {
		t := c.str()
		counts[t] = int(c.u32())
	}
	if err := c.done(); err != nil {
		return nil, fmt.Errorf("store: DF table: %w", err)
	}
	m.df = vector.FromCounts(docs, counts)
	return m.df, nil
}

// MatrixNames returns the persisted score-function names, sorted.
func (m *Mapped) MatrixNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.st != nil {
		names := make([]string, 0, len(m.st.Matrices))
		for name := range m.st.Matrices {
			names = append(names, name)
		}
		sort.Strings(names)
		return names
	}
	return append([]string(nil), m.matNames...)
}

// Matrix materializes (once) one score function's prestige matrix over
// its mapped CSR sections. Only the requested function's sections are
// touched — a file carrying three score functions faults in one.
func (m *Mapped) Matrix(name string) (*prestige.Matrix, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.matrixLocked(name)
}

func (m *Mapped) matrixLocked(name string) (*prestige.Matrix, error) {
	if m.st != nil {
		mat := m.st.Matrix(name)
		if mat == nil {
			return nil, fmt.Errorf("store: state has no %q score matrix", name)
		}
		return mat, nil
	}
	if mat := m.mats[name]; mat != nil {
		return mat, nil
	}
	base, ok := m.matDir[name]
	if !ok {
		return nil, fmt.Errorf("store: state has no %q score matrix (have %v)", name, m.matNames)
	}
	dict, err := m.termDictLocked()
	if err != nil {
		return nil, err
	}
	refsB, err := m.needLocked(base + matCtxs)
	if err != nil {
		return nil, err
	}
	offs, err := m.needLocked(base + matOffsets)
	if err != nil {
		return nil, err
	}
	docs, err := m.needLocked(base + matDocs)
	if err != nil {
		return nil, err
	}
	vals, err := m.needLocked(base + matVals)
	if err != nil {
		return nil, err
	}
	rowMax, err := m.needLocked(base + matRowMax)
	if err != nil {
		return nil, err
	}
	refs := asU32s(refsB)
	ctxs := make([]ontology.TermID, len(refs))
	for i, r := range refs {
		if ctxs[i], err = dictRef(dict, r); err != nil {
			return nil, err
		}
	}
	mat, err := prestige.FromCSR(ctxs, asI32s(offs), asI32s(docs), asF64s(vals), asF64s(rowMax))
	if err != nil {
		return nil, fmt.Errorf("store: matrix %q: %w", name, err)
	}
	m.mats[name] = mat
	return mat, nil
}

// State materializes the whole file into a State — the compatibility
// surface for callers (CLI search, experiments) that want everything.
// Serving paths use the per-component accessors instead, which touch only
// what they need.
func (m *Mapped) State() (*State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.st != nil {
		return m.st, nil
	}
	cs, err := m.contextSetLocked()
	if err != nil {
		return nil, err
	}
	parts, err := m.indexPartsLocked()
	if err != nil {
		return nil, err
	}
	df, err := m.dfLocked()
	if err != nil {
		return nil, err
	}
	mats := make(map[string]*prestige.Matrix, len(m.matNames))
	for _, name := range m.matNames {
		mat, err := m.matrixLocked(name)
		if err != nil {
			return nil, err
		}
		mats[name] = mat
	}
	m.st = &State{ContextSet: cs, Matrices: mats, Index: parts, DF: df}
	return m.st, nil
}

// ZeroCopy reports whether the components alias a memory mapping (false
// for heap-fallback and gob opens).
func (m *Mapped) ZeroCopy() bool { return m.mapped }

// MappedBytes returns the size of the open image (0 for gob opens).
func (m *Mapped) MappedBytes() int { return len(m.data) }

// Retain takes a reference for the duration of a request, guaranteeing
// the mapping stays valid until the matching Release. It fails once Close
// has dropped the owner reference and all other retains drained.
func (m *Mapped) Retain() bool {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release returns a Retain reference; the last release after Close
// unmaps.
func (m *Mapped) Release() {
	if m.refs.Add(-1) == 0 {
		m.unmap()
	}
}

// Close drops the owner reference. Idempotent and safe while requests
// still hold retains: the mapping is unmapped only when the last
// reference goes.
func (m *Mapped) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	m.Release()
	return nil
}

func (m *Mapped) unmap() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.mapped && m.data != nil {
		_ = munmap(m.data)
	}
	m.data = nil
}
