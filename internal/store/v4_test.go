package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

// fixtureWithIndex extends fixture with the artefacts only v4 persists:
// the corpus (for re-binding checks), the analyzer, the inverted index's
// parts, and the DF table.
func fixtureWithIndex(t *testing.T) (*ontology.Ontology, *corpus.Corpus, *corpus.Analyzer, *State) {
	t.Helper()
	o, st := fixture(t)
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := index.Build(a)
	st.Index = ix.Parts()
	st.DF = a.DF()
	return o, c, a, st
}

// assertSameContextSet checks every accessor-visible property of two
// context sets matches — the contract the v4 freeze/thaw must keep.
func assertSameContextSet(t *testing.T, want, got *contextset.ContextSet) {
	t.Helper()
	if want.Kind() != got.Kind() {
		t.Fatal("kind differs")
	}
	wantCtxs, gotCtxs := want.Contexts(), got.Contexts()
	if !reflect.DeepEqual(wantCtxs, gotCtxs) {
		t.Fatalf("contexts differ: %d vs %d", len(wantCtxs), len(gotCtxs))
	}
	for _, ctx := range wantCtxs {
		if !reflect.DeepEqual(want.Papers(ctx), got.Papers(ctx)) {
			t.Fatalf("papers of %s differ", ctx)
		}
		wr, wok := want.Representative(ctx)
		gr, gok := got.Representative(ctx)
		if wok != gok || wr != gr {
			t.Fatalf("representative of %s differs", ctx)
		}
		for _, p := range want.Papers(ctx) {
			if want.AssignScore(ctx, p) != got.AssignScore(ctx, p) {
				t.Fatalf("assign score of %d in %s differs", p, ctx)
			}
			if !got.Contains(ctx, p) {
				t.Fatalf("%s lost member %d", ctx, p)
			}
		}
		if want.Decay(ctx) != got.Decay(ctx) {
			t.Fatalf("decay of %s differs", ctx)
		}
		if want.Size(ctx) != got.Size(ctx) {
			t.Fatalf("size of %s differs", ctx)
		}
	}
}

// assertSameMatrices checks element-wise equality of every score function.
func assertSameMatrices(t *testing.T, st *State, got map[string]*prestige.Matrix) {
	t.Helper()
	want := make(map[string]*prestige.Matrix, len(st.Matrices)+len(st.Scores))
	for name, m := range st.Matrices {
		want[name] = m
	}
	for name, s := range st.Scores {
		if want[name] == nil {
			want[name] = s.Freeze()
		}
	}
	if len(want) != len(got) {
		t.Fatalf("matrix count differs: want %d, got %d", len(want), len(got))
	}
	for name, w := range want {
		g := got[name]
		if g == nil {
			t.Fatalf("matrix %q missing", name)
		}
		if !reflect.DeepEqual(w.Thaw(), g.Thaw()) {
			t.Fatalf("matrix %q differs element-wise", name)
		}
	}
}

// TestCrossVersionRoundTrip saves the same state in every format
// generation v1–v4 and checks each loads back to element-wise equal
// matrices and an equivalent context set.
func TestCrossVersionRoundTrip(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	writers := map[string]func(*bytes.Buffer) error{
		"v1": func(b *bytes.Buffer) error { return saveV1(b, st) },
		"v2": func(b *bytes.Buffer) error { return saveV2(b, st) },
		"v3": func(b *bytes.Buffer) error { return Save(b, st) },
		"v4": func(b *bytes.Buffer) error { return SaveV4(b, st) },
		"v5": func(b *bytes.Buffer) error { return SaveV5(b, st) },
	}
	for name, write := range writers {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := write(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(&buf, o)
			if err != nil {
				t.Fatal(err)
			}
			assertSameContextSet(t, st.ContextSet, got.ContextSet)
			assertSameMatrices(t, st, got.Matrices)
		})
	}
}

// TestV4Deterministic: two saves of the same state are byte-identical.
func TestV4Deterministic(t *testing.T) {
	_, _, _, st := fixtureWithIndex(t)
	var a, b bytes.Buffer
	if err := SaveV4(&a, st); err != nil {
		t.Fatal(err)
	}
	if err := SaveV4(&b, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("v4 encoding is not deterministic")
	}
}

// TestOpenV4 exercises the mmap path end to end: open, lazily materialize
// every component, verify equality against the saved state, and check the
// refcounted lifecycle (double Close is idempotent; Retain after close
// fails).
func TestOpenV4(t *testing.T) {
	o, _, a, st := fixtureWithIndex(t)
	path := filepath.Join(t.TempDir(), "state.v4")
	if err := SaveFileV4(path, st); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.ContextSet()
	if err != nil {
		t.Fatal(err)
	}
	assertSameContextSet(t, st.ContextSet, cs)
	names := m.MatrixNames()
	if want := []string{"citation", "text"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("matrix names %v, want %v", names, want)
	}
	mats := make(map[string]*prestige.Matrix, len(names))
	for _, name := range names {
		if mats[name], err = m.Matrix(name); err != nil {
			t.Fatal(err)
		}
	}
	assertSameMatrices(t, st, mats)
	parts, err := m.IndexParts()
	if err != nil {
		t.Fatal(err)
	}
	if parts == nil {
		t.Fatal("index parts not persisted")
	}
	if _, err := index.FromParts(a, parts); err != nil {
		t.Fatalf("mapped parts do not bind: %v", err)
	}
	df, err := m.DF()
	if err != nil {
		t.Fatal(err)
	}
	wantDocs, wantCounts := st.DF.Counts()
	gotDocs, gotCounts := df.Counts()
	if wantDocs != gotDocs || !reflect.DeepEqual(wantCounts, gotCounts) {
		t.Fatal("DF table differs after mmap open")
	}
	// Lifecycle: a retained reference outlives Close; double Close is safe.
	if !m.Retain() {
		t.Fatal("Retain on open mapping failed")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	// Still readable under the outstanding reference.
	if _, err := m.Matrix("text"); err != nil {
		t.Fatalf("read under retained reference after Close: %v", err)
	}
	m.Release()
	if m.Retain() {
		t.Fatal("Retain succeeded after the last reference released")
	}
}

// TestOpenNoMmapFallback forces the byte-copy path and checks it decodes
// identically (the CI no-mmap job runs the whole package this way too).
func TestOpenNoMmapFallback(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	path := filepath.Join(t.TempDir(), "state.v4")
	if err := SaveFileV4(path, st); err != nil {
		t.Fatal(err)
	}
	t.Setenv(noMmapEnv, "1")
	m, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.ZeroCopy() {
		t.Fatal("ZeroCopy reported under CTXSEARCH_NO_MMAP=1")
	}
	cs, err := m.ContextSet()
	if err != nil {
		t.Fatal(err)
	}
	assertSameContextSet(t, st.ContextSet, cs)
}

// TestOpenGobFallback: Open on a gob state serves the same accessor API.
func TestOpenGobFallback(t *testing.T) {
	o, st := fixture(t)
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.ZeroCopy() {
		t.Fatal("gob open claims zero-copy")
	}
	cs, err := m.ContextSet()
	if err != nil {
		t.Fatal(err)
	}
	assertSameContextSet(t, st.ContextSet, cs)
	parts, err := m.IndexParts()
	if err != nil {
		t.Fatal(err)
	}
	if parts != nil {
		t.Fatal("gob state reports index parts")
	}
	if _, err := m.Matrix("text"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Matrix("no-such-fn"); err == nil {
		t.Fatal("unknown matrix name did not error")
	}
}

// v4Bytes renders the fixture state as a v4 image.
func v4Bytes(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveV4(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// patchTableCRC recomputes the section-table checksum after a test edits
// table bytes (so the edit under test, not the table CRC, trips).
func patchTableCRC(img []byte) {
	count := binary.LittleEndian.Uint32(img[12:])
	table := img[headerSize : headerSize+int(count)*secHdrSize]
	binary.LittleEndian.PutUint32(img[16:], crc32.Checksum(table, castagnoli))
}

func TestOpenTruncatedSectionTable(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v4Bytes(t, st)
	cut := headerSize + secHdrSize/2 // mid-way through the first entry
	data := alignedBytes(cut)
	copy(data, img[:cut])
	_, err := openBytes(data, false, o)
	if err == nil || !strings.Contains(err.Error(), "truncated section table") {
		t.Fatalf("truncated table not diagnosed: %v", err)
	}
}

func TestOpenTableCRCMismatch(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v4Bytes(t, st)
	img[headerSize+8] ^= 0xFF // corrupt a table entry without re-patching
	data := alignedBytes(len(img))
	copy(data, img)
	_, err := openBytes(data, false, o)
	if err == nil || !strings.Contains(err.Error(), "section table CRC mismatch") {
		t.Fatalf("table corruption not diagnosed: %v", err)
	}
}

func TestOpenUnalignedSection(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v4Bytes(t, st)
	// Nudge the CS scores (f64) section offset by 4: no longer 8-aligned.
	count := int(binary.LittleEndian.Uint32(img[12:]))
	for i := 0; i < count; i++ {
		e := img[headerSize+i*secHdrSize:]
		if binary.LittleEndian.Uint32(e[0:]) == secCSScores {
			binary.LittleEndian.PutUint64(e[8:], binary.LittleEndian.Uint64(e[8:])+4)
			break
		}
	}
	patchTableCRC(img)
	data := alignedBytes(len(img))
	copy(data, img)
	_, err := openBytes(data, false, o)
	if err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("unaligned section not diagnosed: %v", err)
	}
}

func TestOpenSectionBeyondFile(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v4Bytes(t, st)
	// Point the CS docs section past EOF (a truncated copy would look the
	// same: table intact, payload missing).
	count := int(binary.LittleEndian.Uint32(img[12:]))
	for i := 0; i < count; i++ {
		e := img[headerSize+i*secHdrSize:]
		if binary.LittleEndian.Uint32(e[0:]) == secCSDocs {
			// Aligned, so the bounds check (not alignment) is what trips.
			binary.LittleEndian.PutUint64(e[8:], alignUp(uint64(len(img)), secAlign))
			break
		}
	}
	patchTableCRC(img)
	data := alignedBytes(len(img))
	copy(data, img)
	_, err := openBytes(data, false, o)
	if err == nil || !strings.Contains(err.Error(), "truncated?") {
		t.Fatalf("out-of-bounds section not diagnosed: %v", err)
	}
}

// TestOpenLazyCRCMismatch: payload corruption is caught on first touch of
// the corrupted section — the open itself (which only reads the header,
// table, and directory) still succeeds.
func TestOpenLazyCRCMismatch(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v4Bytes(t, st)
	// Find the CS docs payload and flip a byte in its middle.
	count := int(binary.LittleEndian.Uint32(img[12:]))
	for i := 0; i < count; i++ {
		e := img[headerSize+i*secHdrSize:]
		if binary.LittleEndian.Uint32(e[0:]) == secCSDocs {
			off := binary.LittleEndian.Uint64(e[8:])
			length := binary.LittleEndian.Uint64(e[16:])
			img[off+length/2] ^= 0xFF
			break
		}
	}
	data := alignedBytes(len(img))
	copy(data, img)
	m, err := openBytes(data, false, o)
	if err != nil {
		t.Fatalf("open must not fault payload pages in: %v", err)
	}
	// Matrices don't touch the corrupted section — still fine.
	if _, err := m.Matrix("text"); err != nil {
		t.Fatalf("uncorrupted section failed: %v", err)
	}
	if _, err := m.ContextSet(); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("payload corruption not caught on first touch: %v", err)
	}
}

// TestOpenTooNew: a version from the future names itself and the fix.
func TestOpenTooNew(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v4Bytes(t, st)
	binary.LittleEndian.PutUint32(img[8:], versionV4+3)
	data := alignedBytes(len(img))
	copy(data, img)
	_, err := openBytes(data, false, o)
	if err == nil {
		t.Fatal("future version opened successfully")
	}
	for _, want := range []string{"version 7", "newer ctxsearch"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("too-new error missing %q: %v", want, err)
		}
	}
	// The same file through a path-based Open (the serve boot path).
	path := filepath.Join(t.TempDir(), "state.v4")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, o); err == nil || !strings.Contains(err.Error(), "newer ctxsearch") {
		t.Fatalf("Open did not surface the too-new hint: %v", err)
	}
}

// saveWithVersion writes a gob stream with an arbitrary header version —
// the fixture generator for future-version diagnostics.
func saveWithVersion(w io.Writer, st *State, ver int) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: "ctxsearch-state", Version: ver}); err != nil {
		return err
	}
	return enc.Encode(payloadV2{Snapshot: st.ContextSet.Snapshot(), Matrices: nil})
}

// TestGobTooNewVersion: a gob header claiming a future version gets the
// same upgrade hint (v4 itself is special-cased: real v4 files are never
// gob-framed, so a gob stream claiming 4 is corruption).
func TestGobTooNewVersion(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := saveWithVersion(&buf, st, 9); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf, o)
	if err == nil || !strings.Contains(err.Error(), "newer ctxsearch") {
		t.Fatalf("future gob version not diagnosed: %v", err)
	}
	buf.Reset()
	if err := saveWithVersion(&buf, st, versionV4); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, o); err == nil || !strings.Contains(err.Error(), "flat binary") {
		t.Fatalf("gob-framed v4 not diagnosed as corruption: %v", err)
	}
}

// TestLoadSizeCap: a stream larger than the sanity cap fails with the
// garbled-length diagnostic instead of consuming unbounded memory.
func TestLoadSizeCap(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	old := maxStateBytes
	maxStateBytes = int64(buf.Len() / 2)
	defer func() { maxStateBytes = old }()
	_, err := Load(bytes.NewReader(buf.Bytes()), o)
	if err == nil || !strings.Contains(err.Error(), "sanity cap") {
		t.Fatalf("oversized stream not capped: %v", err)
	}
}

// TestV4BitFlips corrupts single bytes across a v4 image: opening plus
// materializing every component must either fail cleanly or produce
// equivalent state — never panic. Unlike gob, v4's per-section CRCs make
// silent absorption of payload flips impossible.
func TestV4BitFlips(t *testing.T) {
	o, _, _, st := fixtureWithIndex(t)
	img := v4Bytes(t, st)
	step := len(img)/29 + 1
	for off := 0; off < len(img); off += step {
		data := alignedBytes(len(img))
		copy(data, img)
		data[off] ^= 0xFF
		m, err := openBytes(data, false, o)
		if err != nil {
			continue // rejected at open: fine
		}
		if _, err := m.State(); err == nil {
			t.Fatalf("offset %d: corrupted image materialized without error", off)
		}
	}
}
