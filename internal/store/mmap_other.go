//go:build !unix

package store

import "os"

// mmapFile reports mapping unsupported on this platform; Open falls back
// to the byte-copy path (identical semantics, pages not shared).
func mmapFile(*os.File, int) ([]byte, bool, error) { return nil, false, nil }

// munmap is a no-op without mappings.
func munmap([]byte) error { return nil }
