//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: every process
// serving the same state file shares the page-cache pages. ok=false (with
// nil error) means mapping is not applicable (empty file); a syscall
// error makes the caller fall back to the byte-copy path.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	if size <= 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// munmap releases a mapping from mmapFile.
func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
