package store

import (
	"bytes"
	"encoding/gob"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

func fixture(t *testing.T) (*ontology.Ontology, *State) {
	t.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 9, NumTerms: 50, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	scores := map[string]prestige.Scores{
		"text":     prestige.ScoreAll(prestige.NewTextScorer(a, prestige.DefaultTextWeights()), cs, 0),
		"citation": prestige.ScoreAll(prestige.NewCitationScorer(c, citegraph.PageRankOpts{}), cs, 0),
	}
	return o, &State{ContextSet: cs, Scores: scores}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	// Context set state preserved.
	if got.ContextSet.Kind() != st.ContextSet.Kind() {
		t.Fatal("kind lost")
	}
	wantCtxs := st.ContextSet.Contexts()
	gotCtxs := got.ContextSet.Contexts()
	if !reflect.DeepEqual(wantCtxs, gotCtxs) {
		t.Fatalf("contexts differ: %d vs %d", len(wantCtxs), len(gotCtxs))
	}
	for _, ctx := range wantCtxs {
		if !reflect.DeepEqual(st.ContextSet.Papers(ctx), got.ContextSet.Papers(ctx)) {
			t.Fatalf("papers of %s differ", ctx)
		}
		wr, wok := st.ContextSet.Representative(ctx)
		gr, gok := got.ContextSet.Representative(ctx)
		if wok != gok || wr != gr {
			t.Fatalf("representative of %s differs", ctx)
		}
		for _, p := range st.ContextSet.Papers(ctx) {
			if st.ContextSet.AssignScore(ctx, p) != got.ContextSet.AssignScore(ctx, p) {
				t.Fatalf("assign score of %d in %s differs", p, ctx)
			}
		}
		if st.ContextSet.Decay(ctx) != got.ContextSet.Decay(ctx) {
			t.Fatalf("decay of %s differs", ctx)
		}
	}
	// Scores preserved exactly: the v2 file carries the frozen matrices,
	// and thawing them must reproduce the original maps bit for bit.
	if got.Scores != nil {
		t.Fatal("v2 load must not populate the map form")
	}
	if len(got.Matrices) != len(st.Scores) {
		t.Fatalf("matrices lost: %d vs %d score functions", len(got.Matrices), len(st.Scores))
	}
	for name, want := range st.Scores {
		m := got.Matrices[name]
		if m == nil {
			t.Fatalf("matrix %q missing", name)
		}
		if !reflect.DeepEqual(want, m.Thaw()) {
			t.Fatalf("scores of %q differ after round trip", name)
		}
	}
}

// saveV1 writes the legacy v1 format (nested score maps) the way the
// pre-matrix Save did — the backward-compat fixture generator.
func saveV1(w io.Writer, st *State) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: "ctxsearch-state", Version: versionV1}); err != nil {
		return err
	}
	return enc.Encode(payloadV1{Snapshot: st.ContextSet.Snapshot(), Scores: st.Scores})
}

func TestLoadV1BackwardCompat(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := saveV1(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, o)
	if err != nil {
		t.Fatalf("v1 file must still load: %v", err)
	}
	// v1 maps survive verbatim and are frozen into matrices on load.
	if !reflect.DeepEqual(st.Scores, got.Scores) {
		t.Fatal("v1 scores differ after load")
	}
	for name, want := range st.Scores {
		m := got.Matrices[name]
		if m == nil {
			t.Fatalf("v1 load did not freeze %q", name)
		}
		if !reflect.DeepEqual(want, m.Thaw()) {
			t.Fatalf("frozen %q differs from v1 map", name)
		}
	}
}

// saveV2 writes a v2-version header over the shared v2/v3 payload shape —
// the backward-compat fixture for files written before row maxima joined
// the matrix wire. (The matrices here still encode maxima, which a real v2
// writer omitted; the matrix-level no-RowMax fallback is pinned in the
// prestige package. This test covers the version gate.)
func saveV2(w io.Writer, st *State) error {
	mats := make(map[string]*prestige.Matrix, len(st.Scores))
	for name, s := range st.Scores {
		mats[name] = s.Freeze()
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: "ctxsearch-state", Version: versionV2}); err != nil {
		return err
	}
	return enc.Encode(payloadV2{Snapshot: st.ContextSet.Snapshot(), Matrices: mats})
}

func TestLoadV2BackwardCompat(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := saveV2(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, o)
	if err != nil {
		t.Fatalf("v2 file must still load: %v", err)
	}
	if got.Scores != nil {
		t.Fatal("v2 load must not populate the map form")
	}
	for name, want := range st.Scores {
		m := got.Matrices[name]
		if m == nil {
			t.Fatalf("matrix %q missing from v2 load", name)
		}
		if !reflect.DeepEqual(want, m.Thaw()) {
			t.Fatalf("scores of %q differ after v2 load", name)
		}
	}
}

func TestV2SmallerThanV1(t *testing.T) {
	_, st := fixture(t)
	var v1, v2 bytes.Buffer
	if err := saveV1(&v1, st); err != nil {
		t.Fatal(err)
	}
	if err := Save(&v2, st); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 state (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
	t.Logf("state size: v1=%d bytes, v2=%d bytes (%.1f%% of v1)",
		v1.Len(), v2.Len(), 100*float64(v2.Len())/float64(v1.Len()))
}

func TestSaveLoadFile(t *testing.T) {
	o, st := fixture(t)
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Matrices) != len(st.Scores) {
		t.Fatal("matrices lost")
	}
	for name := range st.Scores {
		if got.Matrix(name) == nil {
			t.Fatalf("matrix %q lost", name)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	o, st := fixture(t)
	if _, err := Load(bytes.NewReader([]byte("junk")), o); err == nil {
		t.Error("junk must fail")
	}
	if err := Save(bytes.NewBuffer(nil), nil); err == nil {
		t.Error("nil state must fail")
	}
	// Snapshot bound to the wrong ontology must fail.
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	other := ontology.New()
	_ = other.Add(ontology.Term{ID: "GO:X", Name: "alien"})
	if err := other.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, other); err == nil {
		t.Error("wrong ontology must fail")
	}
	if _, err := LoadFile("/nonexistent/state.gob", o); err == nil {
		t.Error("missing file must fail")
	}
}
