package store

import (
	"bytes"
	"testing"
)

// TestTruncatedStreams injects truncation at many byte offsets: Load must
// return an error, never panic or silently succeed with partial state.
func TestTruncatedStreams(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	offsets := []int{0, 1, 7, 64, len(full) / 4, len(full) / 2, len(full) - 1}
	for _, off := range offsets {
		if off >= len(full) {
			continue
		}
		_, err := Load(bytes.NewReader(full[:off]), o)
		if err == nil {
			t.Fatalf("truncation at %d bytes loaded successfully", off)
		}
	}
}

// TestBitFlips corrupts single bytes across the stream: Load must either
// error or produce a state that still passes basic invariants (gob can
// absorb some payload flips into string content; structural invariants
// must hold regardless).
func TestBitFlips(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	step := len(full)/23 + 1
	for off := 0; off < len(full); off += step {
		corrupted := append([]byte(nil), full...)
		corrupted[off] ^= 0xFF
		got, err := Load(bytes.NewReader(corrupted), o)
		if err != nil {
			continue // rejected: fine
		}
		// Accepted: scores must still be structurally sound.
		for fn, scores := range got.Scores {
			for ctx, m := range scores {
				for id, v := range m {
					if v != v { // NaN
						t.Fatalf("offset %d: NaN score for %s/%s/%d", off, fn, ctx, id)
					}
				}
			}
		}
	}
}
