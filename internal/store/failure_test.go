package store

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTruncatedStreams injects truncation at many byte offsets: Load must
// return an error, never panic or silently succeed with partial state.
func TestTruncatedStreams(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	offsets := []int{0, 1, 7, 64, len(full) / 4, len(full) / 2, len(full) - 1}
	for _, off := range offsets {
		if off >= len(full) {
			continue
		}
		_, err := Load(bytes.NewReader(full[:off]), o)
		if err == nil {
			t.Fatalf("truncation at %d bytes loaded successfully", off)
		}
	}
}

// TestWrongMagic: a structurally valid gob stream that is not a ctxsearch
// state must be rejected with a message naming the magic actually found.
func TestWrongMagic(t *testing.T) {
	o, _ := fixture(t)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(header{Magic: "not-a-state", Version: version}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf, o)
	if err == nil {
		t.Fatal("wrong magic loaded successfully")
	}
	if !strings.Contains(err.Error(), `"not-a-state"`) {
		t.Fatalf("error does not name the found magic: %v", err)
	}
}

// TestTruncationDiagnostics: errors from cut-off streams must say the file
// is truncated — and, once the header survived, what magic/version it
// carried — so operators can tell a crashed save from the wrong file.
func TestTruncationDiagnostics(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Recover the header's encoded length by encoding it alone.
	var hdrOnly bytes.Buffer
	if err := gob.NewEncoder(&hdrOnly).Encode(header{Magic: "ctxsearch-state", Version: version}); err != nil {
		t.Fatal(err)
	}
	// Cut mid-header: classified as truncated, no magic available yet.
	_, err := Load(bytes.NewReader(full[:hdrOnly.Len()/2]), o)
	if err == nil || !strings.Contains(err.Error(), "truncated file") {
		t.Fatalf("mid-header cut not reported as truncation: %v", err)
	}
	// Cut mid-payload: truncated, and the intact header is echoed back.
	_, err = Load(bytes.NewReader(full[:hdrOnly.Len()+(len(full)-hdrOnly.Len())/2]), o)
	if err == nil {
		t.Fatal("mid-payload cut loaded successfully")
	}
	for _, want := range []string{"truncated file", `"ctxsearch-state"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mid-payload error missing %q: %v", want, err)
		}
	}
}

// TestSaveFileAtomic: SaveFile must leave exactly the named file behind — a
// loadable state with no stray temp files — including when it replaces an
// existing (possibly corrupt) state.
func TestSaveFileAtomic(t *testing.T) {
	o, st := fixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.gob")
	// Pre-existing garbage at the target simulates an earlier bad write.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, o); err != nil {
		t.Fatalf("state written by SaveFile does not load: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.gob" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("stray files after SaveFile: %v", names)
	}
	// A failing save (unwritable directory) must not leave temp droppings.
	if err := SaveFile(filepath.Join(dir, "missing", "state.gob"), st); err == nil {
		t.Fatal("save into missing directory must fail")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Fatalf("failed save left %d entries", len(entries))
	}
}

// TestBitFlips corrupts single bytes across the stream: Load must either
// error or produce a state that still passes basic invariants (gob can
// absorb some payload flips into string content; structural invariants
// must hold regardless).
func TestBitFlips(t *testing.T) {
	o, st := fixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	step := len(full)/23 + 1
	for off := 0; off < len(full); off += step {
		corrupted := append([]byte(nil), full...)
		corrupted[off] ^= 0xFF
		got, err := Load(bytes.NewReader(corrupted), o)
		if err != nil {
			continue // rejected: fine
		}
		// Accepted: scores must still be structurally sound.
		for fn, scores := range got.Scores {
			for ctx, m := range scores {
				for id, v := range m {
					if v != v { // NaN
						t.Fatalf("offset %d: NaN score for %s/%s/%d", off, fn, ctx, id)
					}
				}
			}
		}
	}
}
