package ctxsearch

import (
	"reflect"
	"strings"
	"testing"
)

// TestParallelBuildPipelineGolden is the end-to-end golden test for the
// sharded offline build: the full pipeline — analysis, indexes, both context
// sets and all three prestige score functions — must produce identical
// results at BuildWorkers 1 and N.
func TestParallelBuildPipelineGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline comparison is slow")
	}
	build := func(workers int) (*System, *ContextSet, *ContextSet) {
		cfg := smallConfig()
		cfg.BuildWorkers = workers
		sys, err := NewSyntheticSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys, sys.BuildTextContextSet(), sys.BuildPatternContextSet()
	}
	seqSys, seqText, seqPat := build(1)
	parSys, parText, parPat := build(4)

	compareSets := func(name string, a, b *ContextSet) {
		t.Helper()
		if !reflect.DeepEqual(a.Contexts(), b.Contexts()) {
			t.Fatalf("%s: context lists differ between worker counts", name)
		}
		for _, ctx := range a.Contexts() {
			if !reflect.DeepEqual(a.Papers(ctx), b.Papers(ctx)) {
				t.Fatalf("%s: papers of %s differ between worker counts", name, ctx)
			}
		}
	}
	compareSets("text set", seqText, parText)
	compareSets("pattern set", seqPat, parPat)

	for _, fn := range []struct {
		name  string
		score func(*System, *ContextSet) Scores
	}{
		{"text", (*System).ScoreText},
		{"citation", (*System).ScoreCitation},
		{"pattern", (*System).ScorePattern},
	} {
		seq := fn.score(seqSys, seqText)
		par := fn.score(parSys, parText)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s scores differ between worker counts", fn.name)
		}
	}
}

// TestBuildStatsRecorded checks that NewSystem records the four build stages
// and that later pipeline steps append to the same record.
func TestBuildStatsRecorded(t *testing.T) {
	sys := testSystem(t)
	st := sys.BuildStats()
	if st == nil {
		t.Fatal("no build stats recorded")
	}
	sum := st.Summary()
	for _, stage := range []string{"analyze", "tfidf-warm", "index", "posindex"} {
		if !strings.Contains(sum, stage) {
			t.Fatalf("summary missing stage %q:\n%s", stage, sum)
		}
	}
	if st.Total() <= 0 {
		t.Fatal("zero total build time")
	}
}
