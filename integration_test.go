package ctxsearch_test

import (
	"sync"
	"testing"

	"ctxsearch"
	"ctxsearch/internal/eval"
	"ctxsearch/internal/stats"
)

// The golden integration test pins the end-to-end behaviour of the whole
// pipeline for one fixed seed: exact structural counts (which must never
// drift silently) and the paper's ordering findings (which are the point
// of the system). If an intentional change shifts these, update the pins
// deliberately.

type golden struct {
	sys     *ctxsearch.System
	textSet *ctxsearch.ContextSet
	patSet  *ctxsearch.ContextSet
	text    ctxsearch.Scores
	cit     ctxsearch.Scores
	pat     ctxsearch.Scores
}

var (
	goldenOnce sync.Once
	goldenSt   *golden
	goldenErr  error
)

func getGolden(t *testing.T) *golden {
	t.Helper()
	goldenOnce.Do(func() {
		cfg := ctxsearch.DefaultConfig()
		cfg.Seed = 7
		cfg.Papers = 500
		cfg.OntologyTerms = 120
		cfg.MinContextSize = 5
		sys, err := ctxsearch.NewSyntheticSystem(cfg)
		if err != nil {
			goldenErr = err
			return
		}
		st := &golden{sys: sys}
		st.textSet = sys.BuildTextContextSet()
		st.patSet = sys.BuildPatternContextSet()
		st.text = sys.ScoreText(st.textSet)
		st.cit = sys.ScoreCitation(st.patSet)
		st.pat = sys.ScorePattern(st.patSet)
		goldenSt = st
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenSt
}

func TestGoldenStructuralCounts(t *testing.T) {
	g := getGolden(t)
	// Exact pins for seed 7 / 500 papers / 120 terms. A drift here means
	// the generators or assignment changed behaviour.
	if got := g.sys.Ontology.Len(); got != 120 {
		t.Errorf("ontology terms = %d, want 120", got)
	}
	if got := g.sys.Corpus.Len(); got != 500 {
		t.Errorf("papers = %d, want 500", got)
	}
	textCtxs := len(g.textSet.Contexts())
	patCtxs := len(g.patSet.Contexts())
	if textCtxs == 0 || patCtxs == 0 {
		t.Fatalf("empty context sets: %d / %d", textCtxs, patCtxs)
	}
	// Both sets cover (nearly) every non-root term with evidence.
	evTerms := len(g.sys.Corpus.EvidenceTerms())
	if textCtxs < evTerms {
		t.Errorf("text contexts %d < evidence terms %d", textCtxs, evTerms)
	}
	t.Logf("pinned run: %d text contexts, %d pattern contexts, %d evidence terms",
		textCtxs, patCtxs, evTerms)
}

func TestGoldenSeparabilityOrdering(t *testing.T) {
	g := getGolden(t)
	meanSD := func(s ctxsearch.Scores) float64 {
		var sds []float64
		for _, ctx := range s.Contexts() {
			vals := s.Values(ctx)
			if len(vals) > 0 {
				sds = append(sds, stats.SeparabilitySD(vals, 10))
			}
		}
		return stats.Mean(sds)
	}
	textSD := meanSD(g.text)
	patSD := meanSD(g.pat)
	citSD := meanSD(g.cit)
	// The paper's central separability finding: text < pattern < citation.
	if !(textSD < patSD && patSD < citSD) {
		t.Fatalf("separability ordering violated: text %.2f, pattern %.2f, citation %.2f",
			textSD, patSD, citSD)
	}
}

func TestGoldenSearchDeterminism(t *testing.T) {
	g := getGolden(t)
	engine := g.sys.Engine(g.textSet, g.text)
	query := g.sys.Ontology.Term(g.text.Contexts()[0]).Name
	a := engine.Search(query, ctxsearch.SearchOptions{Limit: 10})
	b := engine.Search(query, ctxsearch.SearchOptions{Limit: 10})
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("nondeterministic result counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || a[i].Relevancy != b[i].Relevancy {
			t.Fatalf("nondeterministic ranking at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGoldenPrecisionOrdering(t *testing.T) {
	g := getGolden(t)
	qs := eval.GenerateQueries(g.sys.Ontology, g.sys.Corpus, eval.QueryGenConfig{
		Seed: 5, NumQueries: 30, MinLevel: 3, ReplaceProb: 0.4, RequireEvidence: true,
	})
	if len(qs) == 0 {
		t.Fatal("no queries")
	}
	answers := make([]map[ctxsearch.PaperID]bool, len(qs))
	for i, q := range qs {
		answers[i] = eval.TrueAnswerSet(g.sys.Ontology, g.sys.Corpus, q.Target)
	}
	thresholds := []float64{0.15, 0.2, 0.25}
	textEngine := g.sys.Engine(g.textSet, g.text)
	citOnText := g.sys.ScoreCitation(g.textSet)
	citEngine := g.sys.Engine(g.textSet, citOnText)
	textCurve := eval.PrecisionCurve(textEngine, qs, answers, thresholds)
	citCurve := eval.PrecisionCurve(citEngine, qs, answers, thresholds)
	var textAvg, citAvg float64
	for i := range thresholds {
		textAvg += textCurve[i].Avg
		citAvg += citCurve[i].Avg
	}
	// The paper's Fig 5.1 finding: text-based prestige beats citation-based
	// at moderate thresholds.
	if textAvg <= citAvg {
		t.Fatalf("precision ordering violated: text %.3f ≤ citation %.3f", textAvg/3, citAvg/3)
	}
}

func TestGoldenOutputReduction(t *testing.T) {
	g := getGolden(t)
	engine := g.sys.Engine(g.textSet, g.text)
	reduced := 0
	checked := 0
	for _, ctx := range g.text.Contexts() {
		if checked >= 10 {
			break
		}
		query := g.sys.Ontology.Term(ctx).Name
		baseline := g.sys.BaselineTFIDF(query, 0, 0)
		if len(baseline) == 0 {
			continue
		}
		checked++
		if len(engine.Search(query, ctxsearch.SearchOptions{})) < len(baseline) {
			reduced++
		}
	}
	if checked == 0 {
		t.Fatal("no queries checked")
	}
	// The §1 claim: output shrinks for (at least most) queries.
	if reduced*2 < checked {
		t.Fatalf("output reduced for only %d/%d queries", reduced, checked)
	}
}
