// Realdata walks the bring-your-own-data path a downstream adopter follows:
// export a corpus to the standard interchange formats (OBO for the
// ontology, GAF for annotation evidence, gob for the papers), then rebuild
// the whole system purely from those files — the way one would load real
// Gene Ontology releases and GO-annotation files — and run a search.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ctxsearch"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

func main() {
	dir, err := os.MkdirTemp("", "ctxsearch-realdata-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	oboPath := filepath.Join(dir, "ontology.obo")
	gafPath := filepath.Join(dir, "annotations.gaf")
	corpusPath := filepath.Join(dir, "papers.gob")

	// Phase 1: produce the interchange files (stand-ins for a real GO
	// release, a real GAF file, and a parsed paper dump).
	fmt.Println("phase 1: exporting interchange files…")
	onto, err := ontology.Generate(ontology.GenConfig{Seed: 21, NumTerms: 120, MaxDepth: 8, SecondParentProb: 0.12})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := corpus.Generate(onto, corpus.DefaultGenConfig(500))
	if err != nil {
		log.Fatal(err)
	}
	writeFile(oboPath, func(f *os.File) error { return onto.WriteOBO(f) })
	writeFile(gafPath, func(f *os.File) error { return corpus.WriteGAF(f, gen) })
	if err := gen.SaveFile(corpusPath); err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{oboPath, gafPath, corpusPath} {
		st, _ := os.Stat(p)
		fmt.Printf("  %s (%d bytes)\n", filepath.Base(p), st.Size())
	}

	// Phase 2: rebuild everything from the files alone.
	fmt.Println("\nphase 2: loading from files…")
	oboFile, err := os.Open(oboPath)
	if err != nil {
		log.Fatal(err)
	}
	loadedOnto, err := ontology.ParseOBO(oboFile)
	oboFile.Close()
	if err != nil {
		log.Fatal(err)
	}
	loadedCorpus, err := corpus.LoadFile(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	// Strip the corpus's own evidence marks and reapply them from the GAF
	// file, as one would with real GO annotations.
	papers := make([]*corpus.Paper, loadedCorpus.Len())
	for i, p := range loadedCorpus.Papers() {
		cp := *p
		cp.Evidence = false
		papers[i] = &cp
	}
	gafFile, err := os.Open(gafPath)
	if err != nil {
		log.Fatal(err)
	}
	annots, err := corpus.ParseGAF(gafFile)
	gafFile.Close()
	if err != nil {
		log.Fatal(err)
	}
	applied, unmatched := corpus.ApplyAnnotations(papers, annots)
	fmt.Printf("  ontology: %d terms · corpus: %d papers · GAF: %d annotations applied, %d unmatched\n",
		loadedOnto.Len(), len(papers), applied, len(unmatched))
	rebuilt, err := corpus.NewCorpus(papers)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 3: the normal pipeline over the loaded data.
	fmt.Println("\nphase 3: context-based search over the loaded data…")
	cfg := ctxsearch.DefaultConfig()
	sys, err := ctxsearch.NewSystem(loadedOnto, rebuilt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cs := sys.BuildTextContextSet()
	scores := sys.ScoreText(cs)
	engine := sys.Engine(cs, scores)
	query := loadedOnto.Term(scores.Contexts()[0]).Name
	fmt.Printf("  query: %q\n", query)
	for i, r := range engine.Search(query, ctxsearch.SearchOptions{Limit: 3}) {
		p := sys.Corpus.Paper(r.Doc)
		fmt.Printf("  %d. [%.3f] PMID %d %.60s…\n", i+1, r.Relevancy, p.PMID, p.Title)
	}
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
