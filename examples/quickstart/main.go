// Quickstart: build a synthetic literature system, assign papers to
// ontology contexts, compute text-based prestige scores, and run one
// context-based search — the paper's five tasks in ~40 lines.
package main

import (
	"fmt"
	"log"

	"ctxsearch"
)

func main() {
	cfg := ctxsearch.DefaultConfig()
	cfg.Papers = 800 // keep the demo snappy
	cfg.OntologyTerms = 150

	sys, err := ctxsearch.NewSyntheticSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d papers · ontology: %d terms\n", sys.Corpus.Len(), sys.Ontology.Len())

	// Task 1: assign papers to contexts (text-based context paper set).
	cs := sys.BuildTextContextSet()
	fmt.Printf("context paper set: %d non-empty contexts\n", len(cs.Contexts()))

	// Task 2: compute prestige scores (text-based score function).
	scores := sys.ScoreText(cs)
	fmt.Printf("scored contexts (above size cutoff %d): %d\n", sys.MinContextSize(), len(scores))

	// Tasks 3–5: select contexts, search within them, rank by relevancy.
	engine := sys.Engine(cs, scores)
	query := sys.Ontology.Term(scores.Contexts()[0]).Name
	fmt.Printf("\nquery: %q\n", query)

	for i, r := range engine.Search(query, ctxsearch.SearchOptions{Limit: 5}) {
		p := sys.Corpus.Paper(r.Doc)
		ctxName := sys.Ontology.Term(r.Context).Name
		fmt.Printf("%d. [relevancy %.3f] %s\n", i+1, r.Relevancy, p.Title)
		fmt.Printf("   prestige %.3f in context %q · text match %.3f\n", r.Prestige, ctxName, r.Match)
	}

	// Contrast with the unranked PubMed-style baseline.
	baseline := sys.BaselinePubMed(query)
	fmt.Printf("\nPubMed-style baseline returns %d unranked papers for the same query\n", len(baseline))
}
