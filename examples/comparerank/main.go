// Comparerank reproduces the paper's core comparison interactively: the
// same query ranked by all three prestige score functions side by side,
// with rank-agreement statistics — the motivation for §5's accuracy and
// separability analysis.
package main

import (
	"fmt"
	"log"

	"ctxsearch"
)

func main() {
	cfg := ctxsearch.DefaultConfig()
	cfg.Papers = 800
	cfg.OntologyTerms = 150

	sys, err := ctxsearch.NewSyntheticSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The pattern-based context paper set supports all three functions.
	cs := sys.BuildPatternContextSet()

	fmt.Println("computing prestige scores with all three functions…")
	scoresByFn := map[string]ctxsearch.Scores{
		"citation": sys.ScoreCitation(cs),
		"text":     textScores(sys, cs),
		"pattern":  sys.ScorePattern(cs),
	}

	query := pickQuery(sys, scoresByFn["pattern"])
	fmt.Printf("\nquery: %q\n", query)

	const topN = 8
	ranks := map[string][]ctxsearch.PaperID{}
	for _, fn := range []string{"citation", "text", "pattern"} {
		scores := scoresByFn[fn]
		if len(scores) == 0 {
			fmt.Printf("\n[%s] no scored contexts (function not applicable to this set)\n", fn)
			continue
		}
		engine := sys.Engine(cs, scores)
		results := engine.Search(query, ctxsearch.SearchOptions{Limit: topN})
		fmt.Printf("\n[%s-based ranking]\n", fn)
		for i, r := range results {
			p := sys.Corpus.Paper(r.Doc)
			fmt.Printf("  %d. [%.3f] PMID %d %.60s…\n", i+1, r.Relevancy, p.PMID, p.Title)
			ranks[fn] = append(ranks[fn], r.Doc)
		}
	}

	// Top-k overlap between each pair — the paper's §2 agreement metric.
	fmt.Printf("\ntop-%d agreement between functions:\n", topN)
	pairs := [][2]string{{"text", "citation"}, {"text", "pattern"}, {"citation", "pattern"}}
	for _, pair := range pairs {
		a, b := ranks[pair[0]], ranks[pair[1]]
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		set := map[ctxsearch.PaperID]bool{}
		for _, id := range a {
			set[id] = true
		}
		inter := 0
		for _, id := range b {
			if set[id] {
				inter++
			}
		}
		den := len(a)
		if len(b) < den {
			den = len(b)
		}
		fmt.Printf("  %s vs %s: %d/%d overlap\n", pair[0], pair[1], inter, den)
	}
}

// textScores assigns text scores to pattern-set contexts by borrowing
// representatives from the text-based set, as the paper's §4 does.
func textScores(sys *ctxsearch.System, cs *ctxsearch.ContextSet) ctxsearch.Scores {
	// The façade's ScoreText uses the set's own representatives; the
	// pattern set has none, so build the text set first and check: the
	// library exposes this via the experiments harness; here we simply use
	// the text set itself for scoring contexts both sets share.
	textSet := sys.BuildTextContextSet()
	scores := sys.ScoreText(textSet)
	// Keep only contexts present in the pattern set so engines are
	// comparable.
	out := ctxsearch.Scores{}
	for _, ctx := range cs.Contexts() {
		if m, ok := scores[ctx]; ok {
			filtered := map[ctxsearch.PaperID]float64{}
			for _, p := range cs.Papers(ctx) {
				if v, in := m[p]; in {
					filtered[p] = v
				}
			}
			if len(filtered) > 0 {
				out[ctx] = filtered
			}
		}
	}
	return out
}

// pickQuery returns the name of a scored context with a healthy paper
// count, so every function has something to rank.
func pickQuery(sys *ctxsearch.System, scores ctxsearch.Scores) string {
	best := ""
	bestN := 0
	for _, ctx := range scores.Contexts() {
		if n := len(scores[ctx]); n > bestN {
			bestN = n
			best = sys.Ontology.Term(ctx).Name
		}
	}
	return best
}
