// Ontologyexplore demonstrates the ontology substrate on its own: generate
// a GO-like DAG, serialise it to OBO, parse it back, and explore levels,
// descendants, information content and the RateOfDecay that governs
// inherited context scores — then show how restricting search to contexts
// controls output size, the headline property of context-based search.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ctxsearch"
	"ctxsearch/internal/ontology"
)

func main() {
	// Generate and round-trip the ontology through OBO.
	gen, err := ontology.Generate(ontology.GenConfig{
		Seed: 7, NumTerms: 150, MaxDepth: 8, SecondParentProb: 0.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gen.WriteOBO(&buf); err != nil {
		log.Fatal(err)
	}
	oboBytes := buf.Len()
	onto, err := ontology.ParseOBO(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ontology: %d terms round-tripped through %d bytes of OBO\n", onto.Len(), oboBytes)

	// Level census.
	fmt.Println("\nterms per level (root = 1):")
	for l := 1; l <= onto.MaxLevel(); l++ {
		fmt.Printf("  level %d: %d terms\n", l, len(onto.TermsAtLevel(l)))
	}

	// Information content along one chain.
	var leaf ctxsearch.TermID
	for _, id := range onto.TermIDs() {
		if onto.Level(id) == onto.MaxLevel() {
			leaf = id
			break
		}
	}
	fmt.Printf("\ninformation content from %s up to its root:\n", leaf)
	cur := leaf
	for {
		fmt.Printf("  %-11s level %d  I(C)=%.3f  %q\n",
			cur, onto.Level(cur), onto.InformationContent(cur), onto.Term(cur).Name)
		parents := onto.Parents(cur)
		if len(parents) == 0 {
			break
		}
		fmt.Printf("      RateOfDecay(parent→here) = %.3f\n", onto.RateOfDecay(parents[0], cur))
		cur = parents[0]
	}

	// Output-size control: a corpus searched with and without contexts.
	cfg := ctxsearch.DefaultConfig()
	cfg.Papers = 600
	cfg.OntologyTerms = 150
	cfg.Seed = 7
	sys, err := ctxsearch.NewSyntheticSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cs := sys.BuildTextContextSet()
	scores := sys.ScoreText(cs)
	engine := sys.Engine(cs, scores)
	fmt.Println("\noutput-size control (context-based vs whole-corpus keyword):")
	shown := 0
	for _, ctx := range scores.Contexts() {
		query := sys.Ontology.Term(ctx).Name
		ctxN := len(engine.Search(query, ctxsearch.SearchOptions{}))
		baseN := len(sys.BaselineTFIDF(query, 0, 0))
		if baseN == 0 || ctxN == 0 {
			continue
		}
		fmt.Printf("  %-48.48q ctx %4d vs baseline %4d (−%2.0f%%)\n",
			query, ctxN, baseN, 100*(1-float64(ctxN)/float64(baseN)))
		shown++
		if shown >= 6 {
			break
		}
	}
}
