// Httpapi runs the context-based search system as an HTTP service and
// exercises it with a client — the deployment shape of a literature
// digital-library backend. It starts the JSON API on a local port, issues
// /stats, /contexts and /search requests, and prints the responses.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"time"

	"ctxsearch"
	"ctxsearch/internal/server"
)

func main() {
	cfg := ctxsearch.DefaultConfig()
	cfg.Papers = 600
	cfg.OntologyTerms = 120

	fmt.Println("building system…")
	sys, err := ctxsearch.NewSyntheticSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cs := sys.BuildTextContextSet()
	scores := sys.ScoreText(cs)
	srv := server.New(sys, cs, scores)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	go func() {
		if err := http.Serve(ln, srv); err != nil {
			log.Print(err)
		}
	}()
	fmt.Printf("serving on %s\n\n", base)

	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) []byte {
		resp, err := client.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		return body
	}

	// 1. Service statistics.
	var stats server.StatsResponse
	mustUnmarshal(get("/stats"), &stats)
	fmt.Printf("GET /stats → %d papers, %d terms, %d contexts (%s set)\n\n",
		stats.Papers, stats.OntologyTerms, stats.Contexts, stats.ContextSetKind)

	// 2. Pick a query from a scored context and ask which contexts match.
	query := sys.Ontology.Term(scores.Contexts()[0]).Name
	var ctxInfos []server.ContextInfo
	mustUnmarshal(get("/contexts?q="+url.QueryEscape(query)), &ctxInfos)
	fmt.Printf("GET /contexts?q=%q → %d contexts\n", query, len(ctxInfos))
	for i, ci := range ctxInfos {
		if i >= 3 {
			break
		}
		fmt.Printf("  [%.2f] %s %q (level %d, %d papers)\n", ci.Score, ci.Term, ci.Name, ci.Level, ci.Papers)
	}

	// 3. Search.
	var results server.SearchResponse
	mustUnmarshal(get("/search?limit=3&q="+url.QueryEscape(query)), &results)
	fmt.Printf("\nGET /search?q=%q → %d results\n", query, len(results.Results))
	for i, r := range results.Results {
		fmt.Printf("  %d. [%.3f] PMID %d %.55s…\n", i+1, r.Relevancy, r.PMID, r.Title)
		fmt.Printf("     %s\n", r.Snippet)
	}

	// 4. Fetch the top paper's detail.
	if len(results.Results) > 0 {
		var paper server.PaperResponse
		mustUnmarshal(get(fmt.Sprintf("/papers/%d", results.Results[0].PaperID)), &paper)
		fmt.Printf("\nGET /papers/%d → %d contexts, %d refs out, %d citations in\n",
			paper.PaperID, len(paper.Contexts), len(paper.References), len(paper.CitedBy))
	}
}

func mustUnmarshal(data []byte, v any) {
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("bad response %q: %v", data, err)
	}
}
