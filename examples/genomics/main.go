// Genomics walks the paper's motivating workflow: a curator searching
// biomedical literature by GO concept. It builds the pattern-based context
// paper set, drills down the hierarchy showing how context size and
// citation-graph sparseness change with depth (the paper's §5 diagnosis),
// and lists the most prestigious papers of a deep context under each score
// function.
package main

import (
	"fmt"
	"log"
	"sort"

	"ctxsearch"
)

func main() {
	cfg := ctxsearch.DefaultConfig()
	cfg.Papers = 800
	cfg.OntologyTerms = 150

	sys, err := ctxsearch.NewSyntheticSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cs := sys.BuildPatternContextSet()
	cit := sys.CitationScorer()

	// Pick a root-to-leaf chain of scored contexts to drill down.
	chain := drillDownChain(sys, cs)
	if len(chain) == 0 {
		log.Fatal("no drill-down chain found")
	}
	fmt.Println("drilling down the context hierarchy:")
	fmt.Printf("%-7s %-10s %7s %12s  %s\n", "level", "term", "papers", "sparseness", "name")
	for _, ctx := range chain {
		fmt.Printf("%-7d %-10s %7d %12.4f  %.48s\n",
			sys.Ontology.Level(ctx), ctx, cs.Size(ctx),
			cit.ContextSparseness(cs, ctx), sys.Ontology.Term(ctx).Name)
	}
	fmt.Println("\n(the paper's §5: deeper contexts are smaller and their citation")
	fmt.Println(" graphs sparser, which is what hurts the citation-based function)")

	// Score the deepest context in the chain with all three functions.
	target := chain[len(chain)-1]
	fmt.Printf("\nmost prestigious papers in %q:\n", sys.Ontology.Term(target).Name)

	citScores := sys.ScoreCitation(cs)
	patScores := sys.ScorePattern(cs)
	for _, fn := range []struct {
		name   string
		scores ctxsearch.Scores
	}{{"citation", citScores}, {"pattern", patScores}} {
		top := fn.scores.TopK(target, 3)
		fmt.Printf("\n  by %s-based prestige:\n", fn.name)
		if len(top) == 0 {
			fmt.Println("    (context below scoring cutoff)")
			continue
		}
		for i, id := range top {
			p := sys.Corpus.Paper(id)
			fmt.Printf("    %d. [%.3f] PMID %d %.55s…\n",
				i+1, fn.scores.Get(target, id), p.PMID, p.Title)
		}
	}

	// Show the information-content decay machinery on the chain.
	fmt.Println("\ninformation content down the chain (deeper = more informative):")
	for _, ctx := range chain {
		fmt.Printf("  %-10s level %d  I(C) = %.3f  decay multiplier %.3f\n",
			ctx, sys.Ontology.Level(ctx), sys.Ontology.InformationContent(ctx), cs.Decay(ctx))
	}
}

// drillDownChain finds the longest ancestor chain of non-empty contexts
// (by walking parents up from the deepest non-empty context).
func drillDownChain(sys *ctxsearch.System, cs *ctxsearch.ContextSet) []ctxsearch.TermID {
	ctxs := cs.ContextsWithMinSize(3)
	if len(ctxs) == 0 {
		return nil
	}
	sort.Slice(ctxs, func(i, j int) bool {
		return sys.Ontology.Level(ctxs[i]) > sys.Ontology.Level(ctxs[j])
	})
	deepest := ctxs[0]
	chain := []ctxsearch.TermID{deepest}
	cur := deepest
	for {
		parents := sys.Ontology.Parents(cur)
		if len(parents) == 0 || sys.Ontology.Level(parents[0]) < 2 {
			break
		}
		cur = parents[0]
		chain = append([]ctxsearch.TermID{cur}, chain...)
	}
	return chain
}
