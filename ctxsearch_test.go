package ctxsearch

import (
	"testing"
)

// smallConfig keeps façade tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.OntologyTerms = 60
	cfg.Papers = 220
	cfg.MaxDepth = 7
	cfg.MinContextSize = 3
	return cfg
}

var sysCache *System

func testSystem(t *testing.T) *System {
	t.Helper()
	if sysCache != nil {
		return sysCache
	}
	sys, err := NewSyntheticSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sysCache = sys
	return sys
}

func TestNewSyntheticSystem(t *testing.T) {
	sys := testSystem(t)
	if sys.Ontology.Len() != 60 || sys.Corpus.Len() != 220 {
		t.Fatalf("sizes: %d terms, %d papers", sys.Ontology.Len(), sys.Corpus.Len())
	}
	if sys.Index().Terms() == 0 {
		t.Fatal("index empty")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("nil inputs must fail")
	}
}

func TestEndToEndTextPipeline(t *testing.T) {
	sys := testSystem(t)
	cs := sys.BuildTextContextSet()
	if len(cs.Contexts()) == 0 {
		t.Fatal("no contexts")
	}
	scores := sys.ScoreText(cs)
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	engine := sys.Engine(cs, scores)
	// Query with a scored context's name: must return results.
	var query string
	for _, ctx := range scores.Contexts() {
		query = sys.Ontology.Term(ctx).Name
		break
	}
	results := engine.Search(query, SearchOptions{})
	if len(results) == 0 {
		t.Fatalf("no results for %q", query)
	}
	baseline := sys.BaselineTFIDF(query, 0, 0)
	if len(results) > len(baseline) {
		t.Fatal("context search output exceeds whole-corpus baseline")
	}
	if ids := sys.BaselinePubMed(query); len(ids) == 0 {
		t.Fatal("PubMed baseline empty")
	}
}

func TestEndToEndPatternPipeline(t *testing.T) {
	sys := testSystem(t)
	cs := sys.BuildPatternContextSet()
	if len(cs.Contexts()) == 0 {
		t.Fatal("no contexts")
	}
	scores := sys.ScorePattern(cs)
	if len(scores) == 0 {
		t.Fatal("no pattern scores")
	}
	cit := sys.ScoreCitation(cs)
	if len(cit) == 0 {
		t.Fatal("no citation scores")
	}
	// Both functions scored the same contexts (those above the cutoff).
	for ctx := range scores {
		if _, ok := cit[ctx]; !ok {
			t.Fatalf("context %s scored by pattern but not citation", ctx)
		}
	}
}

func TestMinContextSizeDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinContextSize = -1
	// 0.15% of 72027 ≈ 108, close to the paper's 100.
	if got := cfg.minContextSize(72027); got < 100 || got > 115 {
		t.Fatalf("paper-scale cutoff = %d", got)
	}
	if got := cfg.minContextSize(1000); got != 5 {
		t.Fatalf("small-corpus floor = %d", got)
	}
	cfg.MinContextSize = 42
	if got := cfg.minContextSize(72027); got != 42 {
		t.Fatalf("explicit cutoff = %d", got)
	}
}

func TestScorersAreNamed(t *testing.T) {
	sys := testSystem(t)
	if sys.CitationScorer().Name() != "citation" ||
		sys.TextScorer().Name() != "text" ||
		sys.PatternScorer().Name() != "pattern" {
		t.Fatal("scorer names wrong")
	}
}
