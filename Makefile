# Developer entry points. `make verify` is the tier-1 gate every PR must
# keep green; it includes a -race pass over the parallelized query path
# (internal/search fans per-context scoring over a worker pool and
# internal/index pools accumulators across goroutines), over the serving
# path (middleware stack, graceful shutdown, fault injection), over the
# arena-reusing offline scoring pipeline (internal/prestige workers hand
# pooled citegraph scratch buffers between goroutines), over the sharded
# offline build (internal/corpus, internal/pattern, internal/contextset fan
# per-shard construction across workers), and over the sharded serving path
# (internal/shard's scatter-gather fan-out and the server Coordinator).

GO ?= go

.PHONY: verify build test vet race bench bench-query bench-prestige bench-build bench-topk bench-shard bench-store test-no-mmap serve-smoke

verify: vet build test race

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# (leaked goroutines, shared ports, package-level caches) can't hide.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Every package: a hand-maintained list would silently miss new concurrent
# packages (as it briefly did when internal/shard landed).
race:
	$(GO) test -race -shuffle=on ./...

# Black-box smoke test of the serve command: boots the real binary, waits
# for readiness, exercises the HTTP API with curl, and checks that SIGTERM
# produces a graceful exit. Also runs a 3-shard cluster phase and a chaos
# phase (2 ranges x 2 replicas, replica killed and restarted mid-traffic
# with byte-identical pages required throughout).
serve-smoke:
	./scripts/serve_smoke.sh

# Full benchmark suite (figures + query path).
bench:
	$(GO) test -bench=. -benchmem ./...

# Just the query-path benchmarks behind BENCH_PR1.json.
bench-query:
	$(GO) test -run xxx -bench 'BenchmarkSelectContexts|BenchmarkEngineSearch' -benchmem ./internal/search/
	$(GO) test -run xxx -bench 'BenchmarkIndexSearchVector' -benchmem ./internal/index/

# The offline-build benchmarks behind BENCH_PR4.json: sharded corpus
# analysis, TF-IDF warming, inverted/positional index construction, and the
# end-to-end system build at 1 vs 8 workers.
bench-build:
	$(GO) test -run xxx -bench 'BenchmarkAnalyzerBuild|BenchmarkAnalyzerWarm' -benchmem ./internal/corpus/
	$(GO) test -run xxx -bench 'BenchmarkIndexBuildWorkers' -benchmem ./internal/index/
	$(GO) test -run xxx -bench 'BenchmarkPosIndexBuildWorkers' -benchmem ./internal/pattern/
	$(GO) test -run xxx -bench 'BenchmarkSystemBuild' -benchmem .

# The exact-top-k benchmarks behind BENCH_PR5.json and BENCH_PR9.json: the
# block-max MaxScore vector search vs the exhaustive Limit-0 pass over a
# large context — including the block-size sweep (Block0/64/128/256, where
# 0 disables the block tables and reproduces the pre-block PR 5 evaluator)
# and the pooled-scratch append path (Append10 must report 0 B/op and
# 0 allocs/op) — the bounded-selection engine merge at page sizes 10/100 vs
# the full ranked list, and the result-cache hit path (must stay
# allocation-free).
bench-topk:
	$(GO) test -run xxx -bench 'BenchmarkSearchVectorContextTopK' -benchmem ./internal/index/
	$(GO) test -run xxx -bench 'BenchmarkTopKParallel' -benchmem ./internal/index/
	$(GO) test -run xxx -bench 'BenchmarkEngineSearch8|BenchmarkEngineSearchTop' -benchmem ./internal/search/
	$(GO) test -run xxx -bench 'BenchmarkCacheHit' -benchmem ./internal/cache/

# The sharded-serving benchmarks behind BENCH_PR6.json: the coordinator's
# page merge throughput and the end-to-end in-process scatter-gather at
# 1 vs 4 shards.
bench-shard:
	$(GO) test -run xxx -bench 'BenchmarkMergePages|BenchmarkGroupSearch' -benchmem ./internal/shard/

# The cold-start benchmarks behind BENCH_PR8.json: v3-gob decode vs v4
# zero-copy mmap open (header/table-only) and full engine-ready bind, plus
# the multi-process run that shows page sharing across replicas.
bench-store:
	$(GO) test -run xxx -bench 'BenchmarkOpen|BenchmarkLoad|BenchmarkSave' -benchmem ./internal/store/
	$(GO) run ./cmd/storebench -procs 1,8

# The byte-copy fallback path (mmap unavailable or disabled): the same
# store/search/index/server suites must pass with zero-copy turned off.
test-no-mmap:
	CTXSEARCH_NO_MMAP=1 $(GO) test ./internal/store/ ./internal/index/ ./internal/search/ ./internal/shard/ ./internal/server/ .

# The prestige-pipeline benchmarks behind BENCH_PR3.json: the CSR-matrix
# query merge, map-vs-matrix lookups, the arena-reusing subgraph+PageRank
# pipeline, bulk scoring at >= 1k contexts, and v1-vs-v2 state load.
bench-prestige:
	$(GO) test -run xxx -bench 'BenchmarkMergeHitsPrestige' -benchmem ./internal/search/
	$(GO) test -run xxx -bench 'BenchmarkPrestigeLookup|BenchmarkScoreAllParallel1kContexts' -benchmem ./internal/prestige/
	$(GO) test -run xxx -bench 'BenchmarkSubgraphPageRankPipeline|BenchmarkSubgraphScratch' -benchmem ./internal/citegraph/
	$(GO) test -run xxx -bench 'BenchmarkLoad|BenchmarkSave' -benchmem ./internal/store/
