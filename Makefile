# Developer entry points. `make verify` is the tier-1 gate every PR must
# keep green; it includes a -race pass over the parallelized query path
# (internal/search fans per-context scoring over a worker pool and
# internal/index pools accumulators across goroutines).

GO ?= go

.PHONY: verify build test vet race bench bench-query

verify: vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/search/... ./internal/index/...

# Full benchmark suite (figures + query path).
bench:
	$(GO) test -bench=. -benchmem ./...

# Just the query-path benchmarks behind BENCH_PR1.json.
bench-query:
	$(GO) test -run xxx -bench 'BenchmarkSelectContexts|BenchmarkEngineSearch' -benchmem ./internal/search/
	$(GO) test -run xxx -bench 'BenchmarkIndexSearchVector' -benchmem ./internal/index/
