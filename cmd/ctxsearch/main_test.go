package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	base := []string{"-papers", "150", "-terms", "40"}
	if err := run(append(base, args...), &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestStatsCommand(t *testing.T) {
	out := runCLI(t, "stats")
	for _, want := range []string{"ontology:", "corpus:", "context set"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestSearchCommand(t *testing.T) {
	out := runCLI(t, "search", "regulation", "of", "transcription")
	if !strings.Contains(out, "results for") && !strings.Contains(out, "no results") {
		t.Fatalf("unexpected search output:\n%s", out)
	}
}

func TestContextsCommand(t *testing.T) {
	out := runCLI(t, "contexts", "transcription")
	if !strings.Contains(out, "contexts") {
		t.Fatalf("unexpected contexts output:\n%s", out)
	}
}

func TestInspectCommand(t *testing.T) {
	out := runCLI(t, "inspect", "0")
	for _, want := range []string{"paper 0", "title:", "authors:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestInspectErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-papers", "150", "-terms", "40", "inspect", "badid"}, &buf); err == nil {
		t.Fatal("bad paper id must fail")
	}
	if err := run([]string{"-papers", "150", "-terms", "40", "inspect", "999999"}, &buf); err == nil {
		t.Fatal("out-of-range paper must fail")
	}
}

func TestUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-papers", "150", "-terms", "40", "frobnicate"}, &buf); err == nil {
		t.Fatal("unknown command must fail")
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-set", "bogus", "-papers", "150", "-terms", "40", "stats"}, &buf); err == nil {
		t.Fatal("bogus context set must fail")
	}
	if err := run([]string{"-score", "bogus", "-papers", "150", "-terms", "40", "stats"}, &buf); err == nil {
		t.Fatal("bogus score function must fail")
	}
}

func TestGenerateAndReload(t *testing.T) {
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "c.gob")
	oboPath := filepath.Join(dir, "o.obo")
	out := runCLI(t, "-corpus", corpusPath, "-obo", oboPath, "generate")
	if !strings.Contains(out, "generated 150 papers") {
		t.Fatalf("generate output:\n%s", out)
	}
	// Reload from the saved files.
	out = runCLI(t, "-corpus", corpusPath, "-obo", oboPath, "stats")
	if !strings.Contains(out, "corpus:   150 papers") {
		t.Fatalf("reloaded stats:\n%s", out)
	}
}

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.gob")
	corpusPath := filepath.Join(dir, "c.gob")
	oboPath := filepath.Join(dir, "o.obo")
	runCLI(t, "-corpus", corpusPath, "-obo", oboPath, "generate")
	// First run computes and saves state.
	first := runCLI(t, "-corpus", corpusPath, "-obo", oboPath, "-state", statePath, "stats")
	// Second run loads it; output must match.
	second := runCLI(t, "-corpus", corpusPath, "-obo", oboPath, "-state", statePath, "stats")
	if first != second {
		t.Fatalf("state reload changed stats:\n%s\nvs\n%s", first, second)
	}
	// Requesting a function the state lacks must fail.
	var buf bytes.Buffer
	err := run([]string{"-corpus", corpusPath, "-obo", oboPath, "-state", statePath,
		"-score", "citation", "-papers", "150", "-terms", "40", "stats"}, &buf)
	if err == nil {
		t.Fatal("missing score function in state must fail")
	}
}

func TestSimAndRelatedCommands(t *testing.T) {
	// Find two term IDs via stats being deterministic: GO:0000004 and
	// GO:0000005 exist in a 40-term ontology.
	out := runCLI(t, "sim", "GO:0000004", "GO:0000005")
	for _, want := range []string{"Resnik", "Lin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sim output missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "-limit", "5", "related", "GO:0000004")
	if !strings.Contains(out, "terms related to") {
		t.Fatalf("related output:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"-papers", "150", "-terms", "40", "sim", "GO:0000004", "GO:9999999"}, &buf); err == nil {
		t.Fatal("unknown term must fail")
	}
}

func TestStatsRicherOutput(t *testing.T) {
	out := runCLI(t, "stats")
	for _, want := range []string{"tokens:", "citations:", "evidence:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestClusterCommand(t *testing.T) {
	out := runCLI(t, "cluster", "regulation", "transcription")
	if !strings.Contains(out, "cluster") {
		t.Fatalf("cluster output:\n%s", out)
	}
}

func TestExportCommand(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "papers.jsonl")
	out := runCLI(t, "export", "jsonl", jsonl)
	if !strings.Contains(out, "wrote jsonl export") {
		t.Fatalf("export output:\n%s", out)
	}
	data, err := os.ReadFile(jsonl)
	if err != nil || len(data) == 0 {
		t.Fatalf("export file: %v", err)
	}
	gaf := filepath.Join(dir, "annots.gaf")
	runCLI(t, "export", "gaf", gaf)
	var buf bytes.Buffer
	if err := run([]string{"-papers", "150", "-terms", "40", "export", "bogus", gaf}, &buf); err == nil {
		t.Fatal("unknown export format must fail")
	}
}

// syncBuffer guards the output writer: serveCmd writes "listening on" from
// the serving goroutine and "engine ready" from the build goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeCommand boots the real serve command on an ephemeral port,
// waits for readiness to flip, exercises the API over HTTP, and then
// cancels the context the way a SIGTERM would — expecting a clean exit.
func TestServeCommand(t *testing.T) {
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- runCtx(ctx, []string{"-papers", "120", "-terms", "40",
			"-addr", "127.0.0.1:0", "serve"}, &out)
	}()
	// The port binds before the engine build finishes; learn it from the log.
	listenRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("never started listening:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr
	// Liveness answers immediately; readiness flips once the engine lands.
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, path := range []string{"/healthz", "/readyz", "/search?q=transcription"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	cancel() // SIGTERM equivalent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve never exited after cancellation")
	}
	if !strings.Contains(out.String(), "engine ready") {
		t.Fatalf("missing engine-ready log:\n%s", out.String())
	}
}

// TestServeCommandBuildFailure: a serve whose engine build fails must shut
// the (already listening) server down and surface the build error.
func TestServeCommandBuildFailure(t *testing.T) {
	var out syncBuffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := runCtx(ctx, []string{"-papers", "120", "-terms", "40",
		"-set", "bogus", "-addr", "127.0.0.1:0", "serve"}, &out)
	if err == nil {
		t.Fatalf("bogus context set must fail serve:\n%s", out.String())
	}
	if !strings.Contains(fmt.Sprint(err), "bogus") {
		t.Fatalf("error does not mention the bad flag: %v", err)
	}
}

func TestBooleanSearchCommand(t *testing.T) {
	out := runCLI(t, "-boolean", "search", "transcription", "AND", "NOT", "corrosion")
	if !strings.Contains(out, "results for") && !strings.Contains(out, "no results") {
		t.Fatalf("boolean search output:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"-papers", "150", "-terms", "40", "-boolean", "search", "((("}, &buf); err == nil {
		t.Fatal("bad boolean query must fail")
	}
}
