// Command ctxsearch is the interactive front end of the library: it
// generates (or loads) a corpus + ontology, builds a context paper set,
// computes prestige scores with a chosen function, and answers queries.
//
// Usage:
//
//	ctxsearch [flags] <command> [args]
//
// Commands:
//
//	generate           generate a synthetic corpus and save it (-corpus, -obo)
//	build              build the context set + scores and save them (-state);
//	                   with -v, print the offline-build timing summary
//	search  <query>    run a context-based search
//	contexts <query>   show which contexts a query selects
//	inspect <paperID>  print one paper with its contexts and scores
//	stats              corpus/ontology/context-set statistics
//	sim <t1> <t2>      semantic similarity between two ontology terms
//	related <term>     ontology terms most similar to the given term
//	cluster <query>    k-means clustering of keyword results (related work §6)
//	export <jsonl|gaf> <path>  export the corpus in an interchange format
//	serve              run the HTTP JSON API (-addr); with -shards=N the
//	                   corpus is partitioned into N in-process engine
//	                   shards behind an exact scatter-gather merge, and
//	                   with -shard-urls=... the process is a stateless
//	                   coordinator over remote shard servers instead
//	shard              run one shard server of a multi-process deployment
//	                   (-shard-index, -shard-count): the full system is
//	                   built, but queries run on the shard's paper range
//	                   and the internal POST /shard/search endpoint serves
//	                   the coordinator
//
// Flags:
//
//	-papers N     synthetic corpus size (default 2000)
//	-terms N      synthetic ontology size (default 400)
//	-seed N       generator seed (default 1)
//	-corpus PATH  corpus gob file to load/save (optional)
//	-obo PATH     ontology OBO file to load/save (optional)
//	-state PATH   context-set + scores gob file; loaded if present,
//	              written after computing otherwise (optional)
//	-set  KIND    context set: text | pattern (default text)
//	-score FN     prestige function: text | citation | pattern (default text)
//	-limit N      max search results (default 15)
//	-addr ADDR    listen address for serve (default :8080)
//	-build-workers N  offline-build parallelism: analysis, index and
//	                  position-index construction, context-set assembly
//	                  (default 0 = GOMAXPROCS; output identical at any N)
//	-topk-workers N   intra-query parallelism budget for bounded top-k
//	                  queries: each large query may fan out over up to N
//	                  range workers, small ones stay serial (default 1;
//	                  result pages byte-identical at any N)
//	-v            verbose: print the build timing summary after the
//	              offline build finishes
//
// Serving flags (see the README's "Serving" section):
//
//	-query-timeout D       per-request search deadline; expiry returns 503
//	                       (default 2s, <=0 disables)
//	-max-inflight N        concurrent API request cap; excess sheds with
//	                       429 + Retry-After (default 64, <=0 unlimited)
//	-http-read-timeout D   http.Server ReadTimeout (default 5s)
//	-http-write-timeout D  http.Server WriteTimeout (default 30s)
//	-http-idle-timeout D   http.Server IdleTimeout (default 2m)
//	-shutdown-timeout D    drain window on SIGINT/SIGTERM (default 10s)
//	-cache-entries N       /search result-cache capacity (default 1024,
//	                       <=0 disables caching)
//	-cache-ttl D           cached /search response lifetime (default 1m,
//	                       <=0 = no expiry; every engine swap still
//	                       invalidates the cache)
//	-debug-addr ADDR       serve /debug/pprof on a SEPARATE listener
//	                       (default off; bind to localhost or a private
//	                       interface — never the public port)
//
// Sharding flags (see the README's "Sharded serving" section):
//
//	-shards N          serve: partition the corpus into N in-process
//	                   engine shards (default 1 = single engine; results
//	                   are byte-identical at any N)
//	-shard-urls LIST   serve: run as a stateless coordinator over the
//	                   comma-separated shard base URLs instead of
//	                   building any engine; each comma-separated range may
//	                   list several replicas separated by "|"
//	                   (url1|url2,url3|url4 = 2 ranges x 2 replicas)
//	-shard-index N     shard: which range this process serves (0-based)
//	-shard-count N     shard: total number of shard processes
//	-shard-timeout D   coordinator: per-shard sub-request deadline
//	                   (default 1s; <=0 disables)
//	-allow-partial     coordinator: on shard failure serve a degraded
//	                   page flagged "partial": true instead of a 503
//	-fanout N          max concurrent shard requests per query
//	                   (default 0 = all shards at once)
//
// Coordinator resilience flags (replicated deployments; see DESIGN.md's
// failure-mode matrix):
//
//	-max-retries N        retries per failed range call, each preferring a
//	                      replica not yet tried (default 2; 0 disables)
//	-retry-budget N       retry token bucket capacity; retries across ALL
//	                      requests are bounded by capacity + requests*ratio,
//	                      so retry storms cannot multiply overload
//	                      (default 10; <=0 unbounded)
//	-retry-ratio R        tokens deposited per request (default 0.1)
//	-hedge-after D        race a second replica when the first is slower
//	                      than D, first success wins (default 0 = off)
//	-breaker-threshold N  consecutive failures that trip a replica's
//	                      circuit breaker open (default 5)
//	-breaker-cooldown D   open-breaker rejection window before a half-open
//	                      probe (default 2s)
//	-probe-interval D     active /healthz probe period feeding breaker and
//	                      replica-selection state (default 500ms;
//	                      <=0 disables)
//
// serve binds its port immediately and builds the engine in the
// background: /healthz answers at once, /readyz (and the API) flip from
// 503 to 200 when the engine is ready, and SIGINT/SIGTERM drain in-flight
// requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ctxsearch"
	"ctxsearch/internal/cluster"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/par"
	"ctxsearch/internal/resilience"
	"ctxsearch/internal/server"
	"ctxsearch/internal/shard"
	"ctxsearch/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ctxsearch:", err)
		os.Exit(1)
	}
}

type app struct {
	sys *ctxsearch.System
	cs  *ctxsearch.ContextSet
	// matrix is the frozen CSR prestige matrix — computed scores are frozen
	// once after scoring, loaded state hands the matrix over directly.
	matrix  *ctxsearch.Matrix
	engine  *ctxsearch.Engine
	limit   int
	boolean bool
	// stateFormat picks the on-disk format when compute saves -state:
	// "v3" (gob), "v4" (flat binary with the text index and DF table), or
	// "v5" (v4 plus the index's block-max tables).
	stateFormat string
}

func run(args []string, out io.Writer) error {
	return runCtx(context.Background(), args, out)
}

// runCtx is run with a caller-supplied base context, so tests can stop a
// serve command the way a SIGTERM would.
func runCtx(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctxsearch", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	papers := fs.Int("papers", 2000, "synthetic corpus size")
	terms := fs.Int("terms", 400, "synthetic ontology size")
	seed := fs.Int64("seed", 1, "generator seed")
	corpusPath := fs.String("corpus", "", "corpus gob file (load if present, else save)")
	oboPath := fs.String("obo", "", "ontology OBO file (load if present, else save)")
	setKind := fs.String("set", "text", "context set: text | pattern")
	scoreFn := fs.String("score", "text", "prestige function: text | citation | pattern")
	limit := fs.Int("limit", 15, "max results")
	boolean := fs.Bool("boolean", false, "treat the search query as a boolean expression (AND/OR/NOT, \"phrases\", field:term)")
	statePath := fs.String("state", "", "context-set + scores gob file (load if present, else save)")
	stateFormat := fs.String("state-format", "v3", "state file format when saving: v3 (gob) | v4 (flat binary, mmap-ready; also persists the text index + DF table so serve skips corpus analysis) | v5 (v4 plus the index's block-max tables, skipping their recompute on open)")
	blockSize := fs.Int("block-size", 0, "inverted-index block-max granularity in postings per block (0 = default 128, negative = disable block tables; results identical at any setting)")
	buildWorkers := fs.Int("build-workers", 0, "offline-build parallelism (0 = GOMAXPROCS; output identical at any setting)")
	topkWorkers := fs.Int("topk-workers", 1, "intra-query parallelism budget for bounded top-k queries (1 = serial; large queries fan out over up to N range workers, results identical at any setting)")
	verbose := fs.Bool("v", false, "print the offline-build timing summary")
	addr := fs.String("addr", ":8080", "listen address for serve")
	queryTimeout := fs.Duration("query-timeout", server.DefaultQueryTimeout, "serve: per-request search deadline, expiry returns 503 (<=0 disables)")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight, "serve: max concurrently served API requests, excess sheds with 429 (<=0 unlimited)")
	httpReadTimeout := fs.Duration("http-read-timeout", 5*time.Second, "serve: http.Server ReadTimeout")
	httpWriteTimeout := fs.Duration("http-write-timeout", 30*time.Second, "serve: http.Server WriteTimeout")
	httpIdleTimeout := fs.Duration("http-idle-timeout", 2*time.Minute, "serve: http.Server IdleTimeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "serve: drain window for in-flight requests on SIGINT/SIGTERM")
	cacheEntries := fs.Int("cache-entries", server.DefaultCacheEntries, "serve: /search result-cache capacity (<=0 disables caching)")
	cacheTTL := fs.Duration("cache-ttl", server.DefaultCacheTTL, "serve: cached /search response lifetime (<=0 = no expiry)")
	debugAddr := fs.String("debug-addr", "", "serve: /debug/pprof listen address (empty = profiling off; never expose publicly)")
	shards := fs.Int("shards", 1, "serve: number of in-process engine shards (1 = single engine; results identical at any N)")
	shardURLs := fs.String("shard-urls", "", "serve: run as a coordinator over these comma-separated shard base URLs")
	shardIndex := fs.Int("shard-index", 0, "shard: which paper range this process serves (0-based)")
	shardCount := fs.Int("shard-count", 1, "shard: total number of shard processes")
	shardTimeout := fs.Duration("shard-timeout", server.DefaultShardTimeout, "coordinator: per-shard sub-request deadline (<=0 disables)")
	allowPartial := fs.Bool("allow-partial", false, "coordinator: serve degraded pages flagged partial instead of 503 on shard failure")
	fanout := fs.Int("fanout", 0, "max concurrent shard requests per query (0 = all shards at once)")
	maxRetries := fs.Int("max-retries", server.DefaultMaxRetries, "coordinator: retries per failed range call, preferring untried replicas (0 disables)")
	retryBudget := fs.Float64("retry-budget", resilience.DefaultBudgetCapacity, "coordinator: retry token bucket capacity bounding total retry amplification (<=0 unbounded)")
	retryRatio := fs.Float64("retry-ratio", resilience.DefaultBudgetRatio, "coordinator: retry tokens deposited per request (steady-state retry fraction)")
	hedgeAfter := fs.Duration("hedge-after", 0, "coordinator: hedge a slow range call to a second replica after this delay (0 disables)")
	breakerThreshold := fs.Int("breaker-threshold", resilience.DefaultFailureThreshold, "coordinator: consecutive failures tripping a replica's circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", resilience.DefaultCooldown, "coordinator: how long an open breaker rejects before a half-open probe")
	probeInterval := fs.Duration("probe-interval", resilience.DefaultProbeInterval, "coordinator: active /healthz probe period per replica (<=0 disables probing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	if *stateFormat != "v3" && *stateFormat != "v4" && *stateFormat != "v5" {
		return fmt.Errorf("unknown -state-format %q (want v3, v4, or v5)", *stateFormat)
	}

	cfg := ctxsearch.DefaultConfig()
	cfg.Seed = *seed
	cfg.Papers = *papers
	cfg.OntologyTerms = *terms
	cfg.BuildWorkers = *buildWorkers
	cfg.IndexBlockSize = *blockSize
	cfg.TopKWorkers = *topkWorkers

	if cmd == "serve" || cmd == "shard" {
		o := serveOpts{
			cfg:        cfg,
			corpusPath: *corpusPath, oboPath: *oboPath,
			setKind: *setKind, scoreFn: *scoreFn, statePath: *statePath,
			stateFormat: *stateFormat,
			addr:        *addr, debugAddr: *debugAddr,
			queryTimeout: *queryTimeout, maxInflight: *maxInflight,
			readTimeout: *httpReadTimeout, writeTimeout: *httpWriteTimeout,
			idleTimeout: *httpIdleTimeout, shutdownTimeout: *shutdownTimeout,
			cacheEntries: *cacheEntries, cacheTTL: *cacheTTL,
			shards: *shards, shardURLs: *shardURLs,
			shardTimeout: *shardTimeout, allowPartial: *allowPartial, fanout: *fanout,
			maxRetries: *maxRetries, retryBudget: *retryBudget, retryRatio: *retryRatio,
			hedgeAfter: *hedgeAfter, breakerThreshold: *breakerThreshold,
			breakerCooldown: *breakerCooldown, probeInterval: *probeInterval,
		}
		if cmd == "shard" {
			if *shardCount < 1 || *shardIndex < 0 || *shardIndex >= *shardCount {
				return fmt.Errorf("shard: need 0 <= -shard-index < -shard-count, got %d of %d", *shardIndex, *shardCount)
			}
			o.shardIndex, o.shardCount = *shardIndex, *shardCount
		}
		return serveCmd(ctx, out, o)
	}

	sys, err := buildSystem(cfg, *corpusPath, *oboPath, cmd == "generate")
	if err != nil {
		return err
	}
	if cmd == "generate" {
		fmt.Fprintf(out, "generated %d papers over %d ontology terms (seed %d)\n",
			sys.Corpus.Len(), sys.Ontology.Len(), *seed)
		return nil
	}

	a := &app{sys: sys, limit: *limit, boolean: *boolean, stateFormat: *stateFormat}
	if cmd == "build" {
		if err := a.compute(*setKind, *scoreFn, *statePath); err != nil {
			return err
		}
		fmt.Fprintf(out, "built %s context set (%d contexts) with %q scores (%d scored contexts)\n",
			*setKind, len(a.cs.Contexts()), *scoreFn, a.matrix.NumContexts())
		if *statePath != "" {
			fmt.Fprintf(out, "state saved to %s\n", *statePath)
		}
		if *verbose {
			fmt.Fprintln(out, sys.BuildStats().Summary())
		}
		return nil
	}
	if err := a.prepare(*setKind, *scoreFn, *statePath); err != nil {
		return err
	}
	a.engine = sys.EngineFrozen(a.cs, a.matrix)
	if *verbose {
		fmt.Fprintln(out, sys.BuildStats().Summary())
	}

	switch cmd {
	case "search":
		return a.search(out, rest)
	case "contexts":
		return a.contexts(out, rest)
	case "inspect":
		return a.inspect(out, rest)
	case "stats":
		return a.stats(out)
	case "sim":
		return a.sim(out, rest)
	case "related":
		return a.related(out, rest)
	case "cluster":
		return a.cluster(out, rest)
	case "export":
		return a.export(out, rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// serveOpts carries everything the serve and shard commands need.
type serveOpts struct {
	cfg                                    ctxsearch.Config
	corpusPath, oboPath, setKind, scoreFn  string
	statePath, stateFormat                 string
	addr, debugAddr                        string
	queryTimeout                           time.Duration
	maxInflight                            int
	readTimeout, writeTimeout, idleTimeout time.Duration
	shutdownTimeout                        time.Duration
	cacheEntries                           int
	cacheTTL                               time.Duration
	// shards > 1 partitions the corpus into in-process engine shards;
	// shardURLs turns the process into a stateless coordinator; shardCount
	// > 1 makes it shard shardIndex of a multi-process deployment.
	shards                 int
	shardURLs              string
	shardIndex, shardCount int
	shardTimeout           time.Duration
	allowPartial           bool
	fanout                 int
	// Coordinator resilience tuning (see internal/resilience).
	maxRetries                     int
	retryBudget, retryRatio        float64
	hedgeAfter                     time.Duration
	breakerThreshold               int
	breakerCooldown, probeInterval time.Duration
}

// serveCmd runs the hardened HTTP server: the port binds immediately with a
// pending server (liveness up, readiness 503), the engine is built or
// loaded in the background and swapped in via SetReady, and SIGINT/SIGTERM
// (or ctx cancellation) trigger a graceful drain. A failed build shuts the
// server down and surfaces the build error.
func serveCmd(ctx context.Context, out io.Writer, o serveOpts) error {
	qt := o.queryTimeout
	if qt <= 0 {
		qt = -1 // flag "disabled" → Config "no deadline"
	}
	mi := o.maxInflight
	if mi <= 0 {
		mi = -1
	}
	ce := o.cacheEntries
	if ce <= 0 {
		ce = -1 // flag "disabled" → Config "caching off"
	}
	ct := o.cacheTTL
	if ct <= 0 {
		ct = -1 // flag "no expiry" → Config "no TTL"
	}
	scfg := server.Config{
		QueryTimeout: qt,
		MaxInflight:  mi,
		CacheEntries: ce,
		CacheTTL:     ct,
		Logger:       log.New(os.Stderr, "ctxsearch: ", log.LstdFlags),
	}
	st := o.shardTimeout
	if st <= 0 {
		st = -1 // flag "disabled" → ShardConfig "no per-shard deadline"
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if o.debugAddr != "" {
		// The profiling suite lives on its own listener so it can be bound
		// to localhost while -addr faces the world; a CPU profile or trace
		// holds its response open for its whole capture window, hence the
		// generous write timeout. A failed debug bind kills the deployment
		// — an operator who asked for profiling should not silently run
		// without it.
		go func() {
			derr := server.Run(ctx, o.debugAddr, server.DebugHandler(), server.RunConfig{
				ReadTimeout:     5 * time.Second,
				WriteTimeout:    5 * time.Minute,
				ShutdownTimeout: o.shutdownTimeout,
				OnListen:        func(a net.Addr) { fmt.Fprintf(out, "debug listening on %s (pprof)\n", a) },
			})
			if derr != nil {
				fmt.Fprintln(os.Stderr, "ctxsearch: debug listener:", derr)
				cancel()
			}
		}()
	}

	// Coordinator shape: no corpus, no engine — just the fan-out front over
	// the given shard servers. Ready as soon as the port binds (readiness
	// aggregates the shards' own readiness).
	if o.shardURLs != "" {
		var urls []string
		for _, u := range strings.Split(o.shardURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return fmt.Errorf("serve: -shard-urls has no URLs")
		}
		mr := o.maxRetries
		if mr <= 0 {
			mr = -1 // flag "disabled" → ShardConfig "no retries"
		}
		rb := o.retryBudget
		if rb <= 0 {
			rb = -1 // flag "unbounded" → ShardConfig "no budget"
		}
		pi := o.probeInterval
		if pi <= 0 {
			pi = -1 // flag "disabled" → ShardConfig "no prober"
		}
		coord := server.NewCoordinator(urls, scfg, server.ShardConfig{
			ShardTimeout:     st,
			AllowPartial:     o.allowPartial,
			FanOut:           o.fanout,
			MaxRetries:       mr,
			RetryBudget:      rb,
			RetryRatio:       o.retryRatio,
			HedgeAfter:       o.hedgeAfter,
			BreakerThreshold: o.breakerThreshold,
			BreakerCooldown:  o.breakerCooldown,
			ProbeInterval:    pi,
		})
		defer coord.Close()
		fmt.Fprintf(out, "coordinating %d shards (%d replicas)\n", coord.NumShards(), coord.NumBackends())
		return server.Run(ctx, o.addr, coord, server.RunConfig{
			ReadTimeout:     o.readTimeout,
			WriteTimeout:    o.writeTimeout,
			IdleTimeout:     o.idleTimeout,
			ShutdownTimeout: o.shutdownTimeout,
			OnListen:        func(a net.Addr) { fmt.Fprintf(out, "listening on %s\n", a) },
		})
	}

	srv := server.NewPending(scfg)
	defer srv.Close()
	buildErr := make(chan error, 1)
	go func() {
		if err := buildAndInstall(out, srv, o); err != nil {
			buildErr <- err
			cancel()
			return
		}
		buildErr <- nil
	}()
	err := server.Run(ctx, o.addr, srv, server.RunConfig{
		ReadTimeout:     o.readTimeout,
		WriteTimeout:    o.writeTimeout,
		IdleTimeout:     o.idleTimeout,
		ShutdownTimeout: o.shutdownTimeout,
		OnListen:        func(a net.Addr) { fmt.Fprintf(out, "listening on %s\n", a) },
	})
	select {
	case berr := <-buildErr:
		if berr != nil {
			return berr
		}
	default:
	}
	return err
}

// buildAndInstall produces the serving state and installs it into srv,
// flipping /readyz. When -state names an existing file, the file is opened
// first (memory-mapped for v4 states) and drives a cold start that skips
// whatever the file carries; otherwise the full offline build runs and
// saves the state if a path was given.
func buildAndInstall(out io.Writer, srv *server.Server, o serveOpts) error {
	start := time.Now()
	if o.statePath != "" {
		if _, err := os.Stat(o.statePath); err == nil {
			return serveFromState(out, srv, o, start)
		}
	}
	sys, err := buildSystem(o.cfg, o.corpusPath, o.oboPath, false)
	if err != nil {
		return fmt.Errorf("building system: %w", err)
	}
	a := &app{sys: sys, stateFormat: o.stateFormat}
	if err := a.prepare(o.setKind, o.scoreFn, o.statePath); err != nil {
		return err
	}
	if err := install(out, srv, o, sys, a.cs, a.matrix, nil, nil); err != nil {
		return err
	}
	finishColdStart(out, srv, sys, start, false)
	return nil
}

// serveFromState boots from an existing -state file. A v4 file is
// memory-mapped; when it carries the text index and DF table the entire
// corpus-analysis pipeline is skipped and the engine binds the mapped CSR
// arrays directly (ctxsearch.NewFrozenSystem). The server takes ownership
// of the mapping — it stays alive until the backend is swapped out and the
// last in-flight request releases it. A state file written by a newer
// binary fails here with the version diagnostic, before readiness flips.
func serveFromState(out io.Writer, srv *server.Server, o serveOpts, start time.Time) (err error) {
	onto, c, err := loadOrGenData(o.cfg, o.corpusPath, o.oboPath, false)
	if err != nil {
		return fmt.Errorf("building system: %w", err)
	}
	t0 := time.Now()
	mapped, err := store.Open(o.statePath, onto)
	if err != nil {
		return fmt.Errorf("opening %s: %w", o.statePath, err)
	}
	defer func() {
		if err != nil {
			_ = mapped.Close()
		}
	}()
	mapDur := time.Since(t0)
	cs, err := mapped.ContextSet()
	if err != nil {
		return fmt.Errorf("loading %s: %w", o.statePath, err)
	}
	matrix, err := mapped.Matrix(o.scoreFn)
	if err != nil {
		return fmt.Errorf("loading %s: %w", o.statePath, err)
	}
	parts, err := mapped.IndexParts()
	if err != nil {
		return fmt.Errorf("loading %s: %w", o.statePath, err)
	}
	var sys *ctxsearch.System
	if parts != nil {
		df, derr := mapped.DF()
		if derr != nil {
			return fmt.Errorf("loading %s: %w", o.statePath, derr)
		}
		sys, err = ctxsearch.NewFrozenSystem(onto, c, parts, df, o.cfg)
	} else {
		// The state has no index (gob, or a v4 written without one): the
		// corpus must still be analysed, but scores and context set are
		// served from the file.
		sys, err = ctxsearch.NewSystem(onto, c, o.cfg)
	}
	if err != nil {
		return err
	}
	sys.BuildStats().Add("state-map", mapDur, 0, "")
	if err := install(out, srv, o, sys, cs, matrix, parts, mapped); err != nil {
		return err
	}
	finishColdStart(out, srv, sys, start, mapped.ZeroCopy())
	return nil
}

// install wires the searcher shape the sharding flags ask for and flips
// readiness. parts (non-nil only on the mapped path) lets shard engines
// slice the existing postings instead of re-analysing the corpus; ref is
// the mapping the server takes ownership of (nil for built state).
func install(out io.Writer, srv *server.Server, o serveOpts, sys *ctxsearch.System, cs *ctxsearch.ContextSet, matrix *ctxsearch.Matrix, parts *index.Parts, ref server.StateRef) error {
	switch {
	case o.shardCount > 1:
		// One shard process of a multi-process deployment: full system
		// (the analyzer's global statistics and the render endpoints
		// need it) but a range-restricted query engine.
		var eng *ctxsearch.Engine
		var r par.Shard
		var err error
		if parts != nil {
			eng, r, err = shard.RangeEngineParts(sys.Analyzer(), parts, cs, matrix, sys.Config().Relevancy,
				o.shardIndex, o.shardCount)
		} else {
			eng, r, err = shard.RangeEngine(sys.Analyzer(), cs, matrix, sys.Config().Relevancy,
				o.shardIndex, o.shardCount, o.cfg.BuildWorkers)
		}
		if err != nil {
			return err
		}
		// The range engine builds its own index, which does not inherit the
		// system config's worker budget.
		eng.SetTopKWorkers(o.cfg.TopKWorkers)
		srv.SetReadyMapped(sys, cs, matrix, eng, ref)
		fmt.Fprintf(out, "shard %d/%d ready (papers %d-%d)\n", o.shardIndex, o.shardCount, r.Lo, r.Hi-1)
	case o.shards > 1:
		var g *shard.Group
		var err error
		sopts := shard.Options{BuildWorkers: o.cfg.BuildWorkers, FanOut: o.fanout, TopKWorkers: o.cfg.TopKWorkers}
		if parts != nil {
			g, err = shard.NewGroupParts(sys.Analyzer(), parts, cs, matrix, sys.Config().Relevancy, o.shards, sopts)
			if err != nil {
				return err
			}
		} else {
			g = shard.NewGroup(sys.Analyzer(), cs, matrix, sys.Config().Relevancy, o.shards, sopts)
		}
		srv.SetReadyMapped(sys, cs, matrix, g, ref)
		fmt.Fprintf(out, "engine ready (%d in-process shards)\n", g.NumShards())
	default:
		srv.SetReadyMapped(sys, cs, matrix, sys.EngineFrozen(cs, matrix), ref)
		fmt.Fprintln(out, "engine ready")
	}
	return nil
}

// finishColdStart records boot-to-ready in the build stats (stage
// "readyz-flip") and in /stats' cold_start_ms, and logs the summary.
func finishColdStart(out io.Writer, srv *server.Server, sys *ctxsearch.System, start time.Time, zeroCopy bool) {
	cold := time.Since(start)
	sys.BuildStats().Add("readyz-flip", cold, 0, "")
	srv.SetColdStart(cold)
	fmt.Fprintf(out, "cold start %s (zero-copy mmap: %v)\n", cold.Round(time.Microsecond), zeroCopy)
	fmt.Fprintln(out, sys.BuildStats().Summary())
}

// buildSystem loads corpus/ontology from files when they exist, generates
// otherwise, and saves when generating with paths given.
func buildSystem(cfg ctxsearch.Config, corpusPath, oboPath string, forceGenerate bool) (*ctxsearch.System, error) {
	o, c, err := loadOrGenData(cfg, corpusPath, oboPath, forceGenerate)
	if err != nil {
		return nil, err
	}
	return ctxsearch.NewSystem(o, c, cfg)
}

// loadOrGenData resolves the ontology and corpus without analysing them —
// the raw inputs both the full build and the mapped-state cold start need.
func loadOrGenData(cfg ctxsearch.Config, corpusPath, oboPath string, forceGenerate bool) (*ctxsearch.Ontology, *ctxsearch.Corpus, error) {
	var o *ctxsearch.Ontology
	var c *ctxsearch.Corpus
	if !forceGenerate && oboPath != "" {
		if f, err := os.Open(oboPath); err == nil {
			defer f.Close()
			parsed, err := ontology.ParseOBO(f)
			if err != nil {
				return nil, nil, fmt.Errorf("parsing %s: %w", oboPath, err)
			}
			o = parsed
		}
	}
	if !forceGenerate && corpusPath != "" {
		if _, err := os.Stat(corpusPath); err == nil {
			loaded, err := corpus.LoadFile(corpusPath)
			if err != nil {
				return nil, nil, fmt.Errorf("loading %s: %w", corpusPath, err)
			}
			c = loaded
		}
	}
	if o == nil {
		gen, err := ontology.Generate(ontology.GenConfig{
			Seed: cfg.Seed, NumTerms: cfg.OntologyTerms, MaxDepth: cfg.MaxDepth, SecondParentProb: 0.12,
		})
		if err != nil {
			return nil, nil, err
		}
		o = gen
		if oboPath != "" {
			f, err := os.Create(oboPath)
			if err != nil {
				return nil, nil, err
			}
			if err := o.WriteOBO(f); err != nil {
				f.Close()
				return nil, nil, err
			}
			if err := f.Close(); err != nil {
				return nil, nil, err
			}
		}
	}
	if c == nil {
		gcfg := corpus.DefaultGenConfig(cfg.Papers)
		gcfg.Seed = cfg.Seed
		gen, err := corpus.Generate(o, gcfg)
		if err != nil {
			return nil, nil, err
		}
		c = gen
		if corpusPath != "" {
			if err := c.SaveFile(corpusPath); err != nil {
				return nil, nil, err
			}
		}
	}
	return o, c, nil
}

// prepare builds (or loads from statePath) the context set and prestige
// matrix for the chosen kind and function, persisting freshly computed
// state when statePath is given. A loaded v2 state hands its CSR matrix
// straight to the engine; a legacy v1 state is frozen by store.Load.
func (a *app) prepare(setKind, scoreFn, statePath string) error {
	if statePath != "" {
		if _, err := os.Stat(statePath); err == nil {
			var st *store.State
			var lerr error
			a.sys.BuildStats().Time("state-load", 0, "", func() {
				st, lerr = store.LoadFile(statePath, a.sys.Ontology)
			})
			if lerr != nil {
				return fmt.Errorf("loading %s: %w", statePath, lerr)
			}
			m := st.Matrix(scoreFn)
			if m == nil {
				return fmt.Errorf("state %s has no %q scores (has: %d functions)", statePath, scoreFn, len(st.Matrices))
			}
			a.cs = st.ContextSet
			a.matrix = m
			return nil
		}
	}
	return a.compute(setKind, scoreFn, statePath)
}

// compute builds the context set and prestige matrix unconditionally (the
// build command's path; prepare falls through to it when no saved state
// exists), persisting to statePath when given.
func (a *app) compute(setKind, scoreFn, statePath string) error {
	switch setKind {
	case "text":
		a.cs = a.sys.BuildTextContextSet()
	case "pattern":
		a.cs = a.sys.BuildPatternContextSet()
	default:
		return fmt.Errorf("unknown context set %q", setKind)
	}
	var scores ctxsearch.Scores
	switch scoreFn {
	case "text":
		scores = a.sys.ScoreText(a.cs)
	case "citation":
		scores = a.sys.ScoreCitation(a.cs)
	case "pattern":
		scores = a.sys.ScorePattern(a.cs)
	default:
		return fmt.Errorf("unknown score function %q", scoreFn)
	}
	a.matrix = scores.Freeze()
	if statePath != "" {
		st := &store.State{ContextSet: a.cs, Matrices: map[string]*ctxsearch.Matrix{scoreFn: a.matrix}}
		save := store.SaveFile
		if a.stateFormat == "v4" || a.stateFormat == "v5" {
			// The flat formats additionally persist the text-index postings
			// and the DF table, so the serving boot maps the file and skips
			// analysis; v5 also persists the block-max tables, so the bind
			// skips their recompute.
			st.Index = a.sys.Index().Parts()
			st.DF = a.sys.Analyzer().DF()
			save = store.SaveFileV4
			if a.stateFormat == "v5" {
				save = store.SaveFileV5
			}
		}
		var serr error
		a.sys.BuildStats().Time("state-save", 0, "", func() {
			serr = save(statePath, st)
		})
		if serr != nil {
			return fmt.Errorf("saving %s: %w", statePath, serr)
		}
	}
	return nil
}

func (a *app) search(out io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("search: missing query")
	}
	query := join(args)
	var results []ctxsearch.SearchResult
	if a.boolean {
		var err error
		results, err = a.engine.SearchBoolean(query, ctxsearch.SearchOptions{Limit: a.limit})
		if err != nil {
			return fmt.Errorf("search: %w", err)
		}
	} else {
		results = a.engine.Search(query, ctxsearch.SearchOptions{Limit: a.limit})
	}
	if len(results) == 0 {
		fmt.Fprintf(out, "no results for %q\n", query)
		return nil
	}
	fmt.Fprintf(out, "%d results for %q\n", len(results), query)
	for i, r := range results {
		p := a.sys.Corpus.Paper(r.Doc)
		fmt.Fprintf(out, "%2d. [%.3f] PMID %d (%d) %s\n", i+1, r.Relevancy, p.PMID, p.Year, p.Title)
		fmt.Fprintf(out, "    prestige %.3f · match %.3f · context %s (%s)\n",
			r.Prestige, r.Match, r.Context, a.sys.Ontology.Term(r.Context).Name)
		if snip := a.sys.Index().Snippet(r.Doc, query, index.SnippetOptions{Window: 18}); snip != "" {
			fmt.Fprintf(out, "    %s\n", snip)
		}
	}
	return nil
}

func (a *app) contexts(out io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("contexts: missing query")
	}
	query := join(args)
	sel := a.engine.SelectContexts(query, ctxsearch.SearchOptions{})
	if len(sel) == 0 {
		fmt.Fprintf(out, "no contexts match %q\n", query)
		return nil
	}
	fmt.Fprintf(out, "%d contexts for %q\n", len(sel), query)
	for _, cs := range sel {
		t := a.sys.Ontology.Term(cs.Context)
		fmt.Fprintf(out, "  [%.2f] %s %q level %d, %d papers\n",
			cs.Score, cs.Context, t.Name, a.sys.Ontology.Level(cs.Context), a.cs.Size(cs.Context))
	}
	return nil
}

func (a *app) inspect(out io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect: want exactly one paper ID")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("inspect: bad paper ID %q", args[0])
	}
	p := a.sys.Corpus.Paper(ctxsearch.PaperID(id))
	if p == nil {
		return fmt.Errorf("inspect: no paper %d", id)
	}
	fmt.Fprintf(out, "paper %d · PMID %d · %d\n", p.ID, p.PMID, p.Year)
	fmt.Fprintf(out, "title:    %s\n", p.Title)
	fmt.Fprintf(out, "authors:  %v\n", p.Authors)
	fmt.Fprintf(out, "refs:     %d out, %d in\n", len(p.References), len(a.sys.Corpus.CitedBy(p.ID)))
	fmt.Fprintf(out, "contexts:\n")
	for _, ctx := range a.cs.ContextsOf(p.ID) {
		score := a.matrix.Get(ctx, p.ID)
		fmt.Fprintf(out, "  %s %q prestige %.3f\n", ctx, a.sys.Ontology.Term(ctx).Name, score)
	}
	return nil
}

func (a *app) stats(out io.Writer) error {
	o, c := a.sys.Ontology, a.sys.Corpus
	fmt.Fprintf(out, "ontology: %d terms, %d roots, max level %d\n", o.Len(), len(o.Roots()), o.MaxLevel())
	fmt.Fprintf(out, "corpus:   %d papers, %d indexed terms\n", c.Len(), a.sys.Index().Terms())
	cst := corpus.ComputeStats(c, a.sys.Analyzer())
	fmt.Fprintf(out, "tokens:   %d total, %.0f per paper, vocabulary %d\n", cst.TotalTokens, cst.MeanTokens, cst.Vocabulary)
	fmt.Fprintf(out, "citations: %d edges, %.1f refs/paper, max in-degree %d, %.0f%% uncited\n",
		cst.TotalCitations, cst.MeanOutDegree, cst.MaxInDegree, 100*cst.UncitedFraction)
	fmt.Fprintf(out, "evidence: %d terms, %d papers · years %d–%d\n",
		cst.EvidenceTerms, cst.EvidencePapers, cst.MinYear, cst.MaxYear)
	ctxs := a.cs.Contexts()
	fmt.Fprintf(out, "context set (%s): %d non-empty contexts\n", a.cs.Kind(), len(ctxs))
	minSize := a.sys.MinContextSize()
	fmt.Fprintf(out, "scored contexts (> %d papers): %d\n", minSize, a.matrix.NumContexts())
	var sum int
	for _, ctx := range ctxs {
		sum += a.cs.Size(ctx)
	}
	if len(ctxs) > 0 {
		fmt.Fprintf(out, "mean context size: %.1f papers\n", float64(sum)/float64(len(ctxs)))
	}
	return nil
}

// sim prints semantic similarity between two terms (by ID or exact name).
func (a *app) sim(out io.Writer, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("sim: want exactly two term IDs")
	}
	t1, err := a.resolveTerm(args[0])
	if err != nil {
		return err
	}
	t2, err := a.resolveTerm(args[1])
	if err != nil {
		return err
	}
	o := a.sys.Ontology
	fmt.Fprintf(out, "%s %q (level %d, I=%.3f)\n", t1, o.Term(t1).Name, o.Level(t1), o.InformationContent(t1))
	fmt.Fprintf(out, "%s %q (level %d, I=%.3f)\n", t2, o.Term(t2).Name, o.Level(t2), o.InformationContent(t2))
	mica := o.MostInformativeCommonAncestor(t1, t2)
	if mica == "" {
		fmt.Fprintln(out, "no common ancestor (different namespaces)")
		return nil
	}
	fmt.Fprintf(out, "MICA: %s %q\n", mica, o.Term(mica).Name)
	fmt.Fprintf(out, "Resnik similarity: %.3f\n", o.ResnikSimilarity(t1, t2))
	fmt.Fprintf(out, "Lin similarity:    %.3f\n", o.LinSimilarity(t1, t2))
	return nil
}

// related prints the terms most Lin-similar to the given term.
func (a *app) related(out io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("related: missing term")
	}
	t, err := a.resolveTerm(join(args))
	if err != nil {
		return err
	}
	o := a.sys.Ontology
	type ts struct {
		id  ctxsearch.TermID
		lin float64
	}
	var all []ts
	for _, other := range o.TermIDs() {
		if other == t {
			continue
		}
		if lin := o.LinSimilarity(t, other); lin > 0 {
			all = append(all, ts{other, lin})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].lin != all[j].lin {
			return all[i].lin > all[j].lin
		}
		return all[i].id < all[j].id
	})
	fmt.Fprintf(out, "terms related to %s %q:\n", t, o.Term(t).Name)
	for i, e := range all {
		if i >= a.limit {
			break
		}
		fmt.Fprintf(out, "  [%.3f] %s %q\n", e.lin, e.id, o.Term(e.id).Name)
	}
	return nil
}

// cluster groups the top keyword results of a query with k-means and
// prints the labelled clusters — the automatically-derived contexts of the
// paper's §6 related work, for side-by-side comparison with ontology
// contexts.
func (a *app) cluster(out io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("cluster: missing query")
	}
	query := join(args)
	hits := ctxsearchBaseline(a.sys, query, 60)
	if len(hits) < 4 {
		fmt.Fprintf(out, "only %d results for %q — too few to cluster\n", len(hits), query)
		return nil
	}
	clusters, err := cluster.KMeans(a.sys.Analyzer(), hits, cluster.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d clusters over %d results for %q\n", len(clusters), len(hits), query)
	for i, cl := range clusters {
		fmt.Fprintf(out, "cluster %d [%s] — %d papers\n", i+1, strings.Join(cl.Label, ", "), len(cl.Docs))
		for j, id := range cl.Docs {
			if j >= 3 {
				fmt.Fprintf(out, "    … and %d more\n", len(cl.Docs)-3)
				break
			}
			p := a.sys.Corpus.Paper(id)
			fmt.Fprintf(out, "    PMID %d %.60s\n", p.PMID, p.Title)
		}
	}
	return nil
}

// ctxsearchBaseline returns the top-N TF-IDF hits' paper IDs.
func ctxsearchBaseline(sys *ctxsearch.System, query string, n int) []ctxsearch.PaperID {
	hits := sys.BaselineTFIDF(query, 0, n)
	out := make([]ctxsearch.PaperID, len(hits))
	for i, h := range hits {
		out[i] = h.Doc
	}
	return out
}

// export writes the corpus in an interchange format.
func (a *app) export(out io.Writer, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("export: want <jsonl|gaf> <path>")
	}
	format, path := args[0], args[1]
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "jsonl":
		err = corpus.WriteJSONL(f, a.sys.Corpus)
	case "gaf":
		err = corpus.WriteGAF(f, a.sys.Corpus)
	default:
		return fmt.Errorf("export: unknown format %q", format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s export to %s\n", format, path)
	return nil
}

// resolveTerm accepts a term ID or an exact (case-insensitive) term name.
func (a *app) resolveTerm(s string) (ctxsearch.TermID, error) {
	o := a.sys.Ontology
	if t := o.Term(ctxsearch.TermID(s)); t != nil {
		return ctxsearch.TermID(s), nil
	}
	lower := strings.ToLower(s)
	for _, id := range o.TermIDs() {
		if strings.ToLower(o.Term(id).Name) == lower {
			return id, nil
		}
	}
	return "", fmt.Errorf("unknown term %q (use a GO:… ID or an exact name)", s)
}

func join(args []string) string {
	out := ""
	for i, a := range args {
		if i > 0 {
			out += " "
		}
		out += a
	}
	return out
}
