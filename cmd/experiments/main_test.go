package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-papers", "120", "-terms", "40", "-queries", "6", "-quiet", "fig5.4"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 5.4a") || !strings.Contains(out.String(), "Fig 5.4b") {
		t.Fatalf("missing figure output:\n%s", out.String())
	}
}

func TestRunMultipleFigures(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-papers", "120", "-terms", "40", "-queries", "6", "-quiet",
		"ablate-teleport", "ablate-hits"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Ablation A1") || !strings.Contains(out.String(), "Ablation A2") {
		t.Fatalf("missing ablations:\n%s", out.String())
	}
	// Output order follows the canonical order, not the argument order.
	if strings.Index(out.String(), "A1") > strings.Index(out.String(), "A2") {
		t.Fatal("canonical ordering violated")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-quiet", "fig9.9"}, &out, &errw); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestProgressGoesToErrWriter(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-papers", "120", "-terms", "40", "-queries", "5", "sparseness"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "generating system") {
		t.Fatal("progress lines missing from err writer")
	}
	if strings.Contains(out.String(), "generating system") {
		t.Fatal("progress leaked into stdout")
	}
}
