// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic corpus, plus the ablations and the §7
// extension measurement listed in DESIGN.md.
//
// Usage:
//
//	experiments [flags] [figure ...]
//
// Figures: fig5.1 fig5.2 fig5.3 fig5.4 fig5.5 fig5.6 fig5.7
// claim-baseline ablate-teleport ablate-hits ablate-cutoff ext-crossctx
// sparseness gopubmed clustering, or "all" (default). "scaling" runs the corpus-size
// sweep instead (expensive; controlled by -scaling-sizes).
//
// Flags:
//
//	-papers N   corpus size (default 2000)
//	-terms N    ontology size (default 400)
//	-queries N  evaluation queries (default 120)
//	-seed N     generator seed (default 1)
//	-csv DIR    also write each figure's data as CSV into DIR
//	-quiet      suppress progress lines
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ctxsearch/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(errw)
	scale := experiments.DefaultScale()
	papers := fs.Int("papers", scale.Papers, "corpus size")
	terms := fs.Int("terms", scale.Terms, "ontology size")
	queries := fs.Int("queries", scale.Queries, "evaluation query count")
	seed := fs.Int64("seed", scale.Seed, "generator seed")
	csvDir := fs.String("csv", "", "directory for CSV exports (optional)")
	trecDir := fs.String("trec", "", "directory for TREC run/qrels export (optional)")
	scalingSizes := fs.String("scaling-sizes", "400,800,1600", "comma-separated corpus sizes for the scaling sweep")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale = experiments.Scale{Papers: *papers, Terms: *terms, Queries: *queries, Seed: *seed}

	figures := fs.Args()
	if len(figures) == 0 {
		figures = []string{"all"}
	}
	var progress io.Writer = errw
	if *quiet {
		progress = nil
	}
	// The scaling sweep builds its own setups; handle it before the shared
	// setup so "experiments scaling" doesn't pay for an unused build.
	if len(figures) == 1 && figures[0] == "scaling" {
		sizes, err := parseSizes(*scalingSizes)
		if err != nil {
			return err
		}
		rows, err := experiments.ScalingSweep(sizes, *seed, progress)
		if err != nil {
			return err
		}
		experiments.RenderScaling(out, rows)
		return nil
	}
	setup, err := experiments.NewSetup(scale, progress)
	if err != nil {
		return err
	}
	if *trecDir != "" {
		if err := os.MkdirAll(*trecDir, 0o755); err != nil {
			return err
		}
		err := setup.TRECExport(func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*trecDir, name))
		})
		if err != nil {
			return fmt.Errorf("trec export: %w", err)
		}
		fmt.Fprintf(errw, "TREC runs written to %s\n", *trecDir)
	}
	writeCSV := func(name string, fn func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(errw, "csv: %v\n", err)
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintf(errw, "csv: %v\n", err)
			return
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintf(errw, "csv %s: %v\n", name, err)
		}
	}
	all := map[string]func(){
		"fig5.1": func() {
			fig := setup.Fig51()
			experiments.RenderPrecision(out, fig)
			writeCSV("fig5.1.csv", func(w io.Writer) error { return experiments.WritePrecisionCSV(w, fig) })
		},
		"fig5.2": func() {
			fig := setup.Fig52()
			experiments.RenderPrecision(out, fig)
			writeCSV("fig5.2.csv", func(w io.Writer) error { return experiments.WritePrecisionCSV(w, fig) })
		},
		"fig5.3": func() {
			fig := setup.Fig53()
			experiments.RenderOverlap(out, fig)
			writeCSV("fig5.3.csv", func(w io.Writer) error { return experiments.WriteOverlapCSV(w, fig) })
		},
		"fig5.4": func() {
			a, b := setup.Fig54()
			experiments.RenderSeparability(out, a)
			experiments.RenderSeparability(out, b)
			writeCSV("fig5.4a.csv", func(w io.Writer) error { return experiments.WriteSeparabilityCSV(w, a) })
			writeCSV("fig5.4b.csv", func(w io.Writer) error { return experiments.WriteSeparabilityCSV(w, b) })
		},
		"fig5.5": func() {
			fig := setup.Fig55()
			experiments.RenderSeparability(out, fig)
			writeCSV("fig5.5.csv", func(w io.Writer) error { return experiments.WriteSeparabilityCSV(w, fig) })
		},
		"fig5.6": func() {
			fig := setup.Fig56()
			experiments.RenderSeparability(out, fig)
			writeCSV("fig5.6.csv", func(w io.Writer) error { return experiments.WriteSeparabilityCSV(w, fig) })
		},
		"fig5.7": func() {
			fig := setup.Fig57()
			experiments.RenderSeparability(out, fig)
			writeCSV("fig5.7.csv", func(w io.Writer) error { return experiments.WriteSeparabilityCSV(w, fig) })
		},
		"claim-baseline":  func() { experiments.RenderClaim(out, setup.ClaimBaseline()) },
		"ablate-teleport": func() { experiments.RenderTeleport(out, setup.AblateTeleport()) },
		"ablate-hits":     func() { experiments.RenderHITS(out, setup.AblateHITS()) },
		"ablate-cutoff":   func() { experiments.RenderCutoff(out, setup.AblateCutoff([]int{0, 5, 10, 25, 50, 100})) },
		"ext-crossctx":    func() { experiments.RenderCrossContext(out, setup.AblateCrossContext()) },
		"sparseness":      func() { experiments.RenderSparseness(out, setup.SparsenessByLevel()) },
		"gopubmed":        func() { experiments.RenderGoPubMed(out, setup.GoPubMedVsContextSets()) },
		"clustering":      func() { experiments.RenderClustering(out, setup.ClusteringVsContexts()) },
	}
	order := []string{
		"fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5", "fig5.6", "fig5.7",
		"claim-baseline", "ablate-teleport", "ablate-hits", "ablate-cutoff",
		"ext-crossctx", "sparseness", "gopubmed", "clustering",
	}
	want := map[string]bool{}
	for _, f := range figures {
		if f == "all" {
			for _, k := range order {
				want[k] = true
			}
			continue
		}
		if _, ok := all[f]; !ok {
			return fmt.Errorf("unknown figure %q (valid: %v, all)", f, order)
		}
		want[f] = true
	}
	for _, k := range order {
		if want[k] {
			all[k]()
		}
	}
	return nil
}

// parseSizes parses "400,800,1600".
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad scaling size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scaling sizes given")
	}
	return out, nil
}
