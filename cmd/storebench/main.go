// Command storebench measures state-file cold start: the wall time and
// memory cost of going from a file on disk to engine-ready bound state, gob
// (v3) versus flat-binary mmap (v4, and v5 with persisted block-max
// tables), at one and many concurrent processes.
//
// The parent builds one synthetic state, saves it in both formats, then
// re-execs itself as child processes that each open the file, bind every
// section (context set, matrices, index parts, DF — first-touch CRC
// included) and report wall time plus VmRSS and proportional-set-size (PSS)
// deltas from /proc. PSS is the number that shows the v4 win at fleet
// scale: N processes mapping one file share its pages, N gob processes
// each hold a private decoded heap.
//
//	go run ./cmd/storebench -procs 1,8 -out BENCH_PR8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/store"
)

const (
	ontologySeed = 9
	maxDepth     = 7
)

func main() {
	var (
		papers  = flag.Int("papers", 2000, "synthetic corpus size")
		terms   = flag.Int("terms", 250, "synthetic ontology size")
		procs   = flag.String("procs", "1,8", "comma-separated process counts")
		out     = flag.String("out", "", "write the JSON report here (default stdout)")
		formats = flag.String("state-formats", "v3,v4,v5", "comma-separated state formats to measure (v3|v4|v5)")
		child   = flag.Bool("child", false, "internal: run one open+bind measurement and exit")
		format  = flag.String("format", "", "internal: child state format (v3|v4|v5)")
		path    = flag.String("path", "", "internal: child state file path")
	)
	flag.Parse()
	if *child {
		if err := runChild(*format, *path, *terms); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := runParent(*papers, *terms, *procs, *formats, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// childReport is one child process's measurement, printed as a JSON line.
type childReport struct {
	OpenMS     float64 `json:"open_ms"`
	RSSDeltaKB int64   `json:"rss_delta_kb"`
	PSSDeltaKB int64   `json:"pss_delta_kb"`
}

func buildOntology(terms int) (*ontology.Ontology, error) {
	return ontology.Generate(ontology.GenConfig{Seed: ontologySeed, NumTerms: terms, MaxDepth: maxDepth})
}

// runChild opens the state and binds every section, timing only that.
func runChild(format, path string, terms int) error {
	o, err := buildOntology(terms)
	if err != nil {
		return err
	}
	rss0, pss0 := procMem()
	start := time.Now()
	switch format {
	case "v3":
		st, err := store.LoadFile(path, o)
		if err != nil {
			return err
		}
		for name := range st.Matrices {
			if st.Matrix(name) == nil {
				return fmt.Errorf("matrix %q missing", name)
			}
		}
	case "v4", "v5":
		m, err := store.Open(path, o)
		if err != nil {
			return err
		}
		defer m.Close()
		if _, err := m.ContextSet(); err != nil {
			return err
		}
		for _, name := range m.MatrixNames() {
			if _, err := m.Matrix(name); err != nil {
				return err
			}
		}
		parts, err := m.IndexParts()
		if err != nil {
			return err
		}
		if parts != nil {
			// v4 states carry no block-max tables; engine bind recomputes
			// them over every posting (v5 binds them zero-copy). Charge
			// that cost here so the formats stay comparable end to end.
			parts.EnsureBlockTables(0)
		}
		if _, err := m.DF(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q", format)
	}
	elapsed := time.Since(start)
	rss1, pss1 := procMem()
	return json.NewEncoder(os.Stdout).Encode(childReport{
		OpenMS:     float64(elapsed.Microseconds()) / 1000,
		RSSDeltaKB: rss1 - rss0,
		PSSDeltaKB: pss1 - pss0,
	})
}

// procMem reads VmRSS (KB) from /proc/self/status and Pss (KB) from
// /proc/self/smaps_rollup. Zeroes on non-Linux.
func procMem() (rssKB, pssKB int64) {
	rssKB = procField("/proc/self/status", "VmRSS:")
	pssKB = procField("/proc/self/smaps_rollup", "Pss:")
	return
}

func procField(path, prefix string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		n, _ := strconv.ParseInt(fields[1], 10, 64)
		return n
	}
	return 0
}

// formatRun aggregates one (format, procs) cell of the report.
type formatRun struct {
	Procs        int     `json:"procs"`
	MeanOpenMS   float64 `json:"mean_open_ms"`
	MaxOpenMS    float64 `json:"max_open_ms"`
	TotalRSSKB   int64   `json:"total_rss_delta_kb"`
	TotalPSSKB   int64   `json:"total_pss_delta_kb"`
	PerProcPSSKB int64   `json:"per_proc_pss_delta_kb"`
}

type report struct {
	PR       int                    `json:"pr"`
	Title    string                 `json:"title"`
	Machine  string                 `json:"machine"`
	Method   string                 `json:"method"`
	Corpus   map[string]int         `json:"corpus"`
	FileSize map[string]int64       `json:"state_file_bytes"`
	Runs     map[string][]formatRun `json:"runs"`
	// Errors records formats that failed to save, open or measure. A
	// failing format is reported here and skipped; the other formats'
	// numbers still land in Runs, so one broken decoder (or a corrupt
	// file) never voids the whole comparison.
	Errors map[string]string `json:"errors,omitempty"`
	Note   string            `json:"note"`
}

func runParent(papers, terms int, procsSpec, formatsSpec, out string) error {
	var counts []int
	for _, s := range strings.Split(procsSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -procs entry %q", s)
		}
		counts = append(counts, n)
	}
	savers := map[string]func(string, *store.State) error{
		"v3": store.SaveFile,
		"v4": store.SaveFileV4,
		"v5": store.SaveFileV5,
	}
	var formats []string
	for _, s := range strings.Split(formatsSpec, ",") {
		f := strings.TrimSpace(s)
		if savers[f] == nil {
			return fmt.Errorf("bad -state-formats entry %q (want v3|v4|v5)", s)
		}
		formats = append(formats, f)
	}
	if len(formats) == 0 {
		return fmt.Errorf("-state-formats selects no formats")
	}

	fmt.Fprintf(os.Stderr, "building synthetic state (%d papers, %d terms)...\n", papers, terms)
	o, err := buildOntology(terms)
	if err != nil {
		return err
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(papers))
	if err != nil {
		return err
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	st := &store.State{
		ContextSet: cs,
		Matrices: map[string]*prestige.Matrix{
			"text":     prestige.ScoreAll(prestige.NewTextScorer(a, prestige.DefaultTextWeights()), cs, 0).Freeze(),
			"citation": prestige.ScoreAll(prestige.NewCitationScorer(c, citegraph.PageRankOpts{}), cs, 0).Freeze(),
		},
		Index: index.Build(a).Parts(),
		DF:    a.DF(),
	}

	dir, err := os.MkdirTemp("", "storebench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// Per-format faults — a save, stat or child failure — mark the format
	// failed and drop it from the sweep; the remaining formats still
	// report. failed formats land in the report's errors section.
	failed := map[string]string{}
	fail := func(format string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v (skipping format)\n", format, err)
		failed[format] = err.Error()
	}
	paths := make(map[string]string, len(formats))
	for _, f := range formats {
		p := filepath.Join(dir, "state."+f)
		if err := savers[f](p, st); err != nil {
			fail(f, fmt.Errorf("save: %w", err))
			continue
		}
		paths[f] = p
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}
	rep := report{
		PR:       8,
		Title:    "Zero-copy mmap state format (v4): O(1) cold start for shards and replicas",
		Machine:  fmt.Sprintf("%s, %s/%s", cpuModel(), runtime.GOOS, runtime.GOARCH),
		Method:   "each process opens the state file and binds every section (context set, matrices, index parts, DF; flat-format first-touch CRC included, plus the block-max table recompute that binding a state without persisted tables pays — v5 carries them, v3/v4 recompute); times exclude ontology generation; memory deltas from /proc/self/{status,smaps_rollup}; see `make bench-store`.",
		Corpus:   map[string]int{"papers": papers, "ontology_terms": terms},
		FileSize: map[string]int64{},
		Runs:     map[string][]formatRun{},
		Note:     "total_pss_delta_kb is the fleet-scale number: v4 processes share the mapped pages, gob processes each hold a private decoded heap.",
	}
	for f, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			fail(f, fmt.Errorf("stat: %w", err))
			delete(paths, f)
			continue
		}
		rep.FileSize[f] = fi.Size()
	}

	for _, format := range formats {
		if _, ok := paths[format]; !ok {
			continue
		}
		for _, n := range counts {
			run, err := spawn(self, format, paths[format], terms, n)
			if err != nil {
				// Every child of this format opens the same file the same
				// way; further process counts would fail identically.
				fail(format, fmt.Errorf("x%d: %w", n, err))
				delete(rep.Runs, format)
				break
			}
			rep.Runs[format] = append(rep.Runs[format], run)
			fmt.Fprintf(os.Stderr, "%s x%d: mean open %.2fms, max %.2fms, total pss delta %d KB\n",
				format, n, run.MeanOpenMS, run.MaxOpenMS, run.TotalPSSKB)
		}
	}
	if len(failed) > 0 {
		rep.Errors = failed
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("every state format failed: %v", failed)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// spawn launches n concurrent children and folds their reports.
func spawn(self, format, path string, terms, n int) (formatRun, error) {
	type res struct {
		rep childReport
		err error
	}
	ch := make(chan res, n)
	for i := 0; i < n; i++ {
		go func() {
			cmd := exec.Command(self, "-child", "-format", format, "-path", path, "-terms", strconv.Itoa(terms))
			cmd.Stderr = os.Stderr
			outBytes, err := cmd.Output()
			if err != nil {
				ch <- res{err: err}
				return
			}
			var r childReport
			if err := json.Unmarshal(outBytes, &r); err != nil {
				ch <- res{err: fmt.Errorf("bad child output %q: %w", outBytes, err)}
				return
			}
			ch <- res{rep: r}
		}()
	}
	run := formatRun{Procs: n}
	for i := 0; i < n; i++ {
		r := <-ch
		if r.err != nil {
			return run, r.err
		}
		run.MeanOpenMS += r.rep.OpenMS
		if r.rep.OpenMS > run.MaxOpenMS {
			run.MaxOpenMS = r.rep.OpenMS
		}
		run.TotalRSSKB += r.rep.RSSDeltaKB
		run.TotalPSSKB += r.rep.PSSDeltaKB
	}
	run.MeanOpenMS /= float64(n)
	run.PerProcPSSKB = run.TotalPSSKB / int64(n)
	return run, nil
}

// cpuModel reads the first "model name" from /proc/cpuinfo, best effort.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
